#!/usr/bin/env python
"""Run the benchmark harness and emit/compare ``BENCH_*.json`` results.

Usage (from the repository root)::

    python scripts/bench.py --quick                 # CI's fast set
    python scripts/bench.py --scenarios a,b --repeat 3
    python scripts/bench.py --quick --update-baseline
    python scripts/bench.py --list

Each scenario writes ``BENCH_<name>.json`` into ``--output-dir`` (the
repository root by default).  When a committed baseline exists
(``benchmarks/baseline.json``), results are compared against it and the
script exits non-zero if any scenario's normalized score regressed by more
than ``--tolerance`` (default 25%).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

import harness  # noqa: E402  (needs the path setup above)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced problem sizes (CI configuration)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated scenario names (default: the "
                             "registered default set)")
    parser.add_argument("--all", action="store_true",
                        help="run every registered scenario, including the "
                             "experiment-module wrappers")
    parser.add_argument("--repeat", type=int, default=1,
                        help="best-of-N repetitions per scenario")
    parser.add_argument("--output-dir", type=Path, default=REPO_ROOT,
                        help="where BENCH_<name>.json files are written")
    parser.add_argument("--baseline", type=Path,
                        default=harness.DEFAULT_BASELINE,
                        help="baseline file to compare against")
    parser.add_argument("--tolerance", type=float,
                        default=harness.DEFAULT_TOLERANCE,
                        help="allowed fractional regression before failing")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write results to the baseline file instead of "
                             "failing on regression")
    parser.add_argument("--no-compare", action="store_true",
                        help="skip the baseline comparison entirely")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in sorted(harness.BENCH_SCENARIOS.items()):
            marker = "*" if spec.default else " "
            print(f"{marker} {name:24s} {spec.description}")
        return 0

    if args.scenarios:
        names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
        unknown = [n for n in names if n not in harness.BENCH_SCENARIOS]
        if unknown:
            parser.error(f"unknown scenarios: {', '.join(unknown)}")
    elif args.all:
        names = sorted(harness.BENCH_SCENARIOS)
    else:
        names = harness.default_scenario_names()

    args.output_dir.mkdir(parents=True, exist_ok=True)
    print("calibrating...", flush=True)
    calibration = harness.calibrate()
    print(f"calibration: {calibration:.2f} Mop/s")

    results = []
    for name in names:
        print(f"running {name}...", flush=True)
        result = harness.run_benchmark(
            name, quick=args.quick, repeat=args.repeat,
            calibration_mops=calibration,
        )
        path = result.write(args.output_dir)
        print(
            f"  {result.wall_time_s:8.3f}s  "
            f"{result.events_per_sec:12.1f} events/s  "
            f"{result.ops_per_sec:12.1f} ops/s  "
            f"rss={result.peak_rss_kb}KiB  -> {path.name}"
        )
        results.append(result)

    if args.update_baseline:
        harness.save_baseline(args.baseline, results)
        print(f"baseline updated: {args.baseline}")
        return 0

    if args.no_compare or not args.baseline.exists():
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; skipping comparison")
        return 0

    baseline = harness.load_baseline(args.baseline)
    comparisons = harness.compare_to_baseline(
        results, baseline, tolerance=args.tolerance
    )
    regressed = False
    for comparison in comparisons:
        print(comparison.describe())
        regressed = regressed or comparison.regressed
    if regressed:
        print(f"FAIL: regression beyond {args.tolerance:.0%} tolerance")
        return 1
    print("benchmark comparison passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
