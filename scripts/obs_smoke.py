#!/usr/bin/env python
"""Observability smoke test (the CI `obs` job).

Exercises the obs layer against a *live* distributed campaign, the way an
operator would watch one:

1. start ``campaign serve --metrics-port`` plus two ``campaign work
   --metrics-out`` processes on a small sweep;
2. scrape ``GET /metrics`` from the coordinator **mid-run**, parse it as
   Prometheus text exposition format v0.0.4 (every sample line must
   parse, every series must carry ``# HELP``/``# TYPE`` headers,
   histogram bucket counts must be cumulative) and require the
   coordinator series (``repro_coordinator_polls_total``,
   ``repro_lease_cells``, ``repro_lease_ranges``);
3. after completion, require the worker series
   (``repro_sim_runs_total``, ``repro_store_puts_total``,
   ``repro_worker_cells_total``) in the workers' ``--metrics-out``
   snapshots and run the alert rules (``repro-urb obs check``) over
   every final snapshot — a reclaim storm or failed cells fails CI.

Exits non-zero with a diagnostic on any violated invariant.  The workdir
is left behind so CI can upload it as an artifact.

Usage::

    python scripts/obs_smoke.py [--workdir obs-smoke] [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import socket
import subprocess
import sys
import time
from pathlib import Path
from urllib.error import URLError
from urllib.request import urlopen

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The sweep under test: 3 loss levels x 8 seeds = 24 cells.
SWEEP_ARGS = [
    "--algorithm", "algorithm2", "--n", "5", "--values", "0.0,0.1,0.2",
    "--seeds", "8", "--max-time", "120",
]

#: Series the coordinator's live scrape must expose mid-run.
COORDINATOR_SERIES = (
    "repro_coordinator_polls_total",
    "repro_lease_cells",
    "repro_lease_ranges",
    "repro_lease_workers_active",
)

#: Series every worker's final snapshot must contain.
WORKER_SERIES = (
    "repro_sim_runs_total",
    "repro_store_puts_total",
    "repro_worker_cells_total",
    "repro_worker_cell_seconds",
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse text exposition format; fails loudly on any malformed line.

    Returns ``{series_base_name: [(labels, value), ...]}`` where
    ``_bucket``/``_sum``/``_count`` suffixes fold into the histogram's
    base name.
    """
    series: dict[str, list[tuple[dict, float]]] = {}
    typed: dict[str, str] = {}
    helped: set[str] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            fail(f"/metrics line {line_number} does not parse: {line!r}")
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            fail(f"series {name!r} has no # TYPE header")
        if base not in helped and name not in helped:
            fail(f"series {name!r} has no # HELP header")
        value = float(match.group("value").replace("+Inf", "inf")
                      .replace("-Inf", "-inf"))
        series.setdefault(base, []).append((labels, value))
    # Histogram buckets must be cumulative in ascending ``le`` order.
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = [(labels, value) for labels, value
                   in series.get(name, [])
                   if "le" in labels]
        by_child: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in buckets:
            child = tuple(sorted((k, v) for k, v in labels.items()
                                 if k != "le"))
            bound = float(labels["le"].replace("+Inf", "inf"))
            by_child.setdefault(child, []).append((bound, value))
        for child, entries in by_child.items():
            entries.sort()
            counts = [count for _, count in entries]
            if counts != sorted(counts):
                fail(f"histogram {name!r} child {child} has "
                     f"non-cumulative buckets: {counts}")
    return series


def scrape(port: int) -> str | None:
    try:
        with urlopen(f"http://127.0.0.1:{port}/metrics",
                     timeout=2.0) as response:
            content_type = response.headers.get("Content-Type", "")
            if "version=0.0.4" not in content_type:
                fail(f"unexpected /metrics Content-Type {content_type!r}")
            return response.read().decode("utf-8")
    except (URLError, OSError, ConnectionError):
        return None


def check_snapshot_series(path: Path, required: tuple[str, ...]) -> None:
    if not path.exists():
        fail(f"expected snapshot {path} was not written")
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("snapshot_version") != 1:
        fail(f"{path}: unexpected snapshot_version "
             f"{data.get('snapshot_version')!r}")
    missing = [name for name in required
               if name not in data.get("metrics", {})]
    if missing:
        fail(f"{path} is missing required series: {missing} "
             f"(has: {sorted(data.get('metrics', {}))})")


def run_alerts(path: Path) -> None:
    result = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "check", str(path)],
        env=run_env(), capture_output=True, text=True,
    )
    print(result.stdout.rstrip())
    if result.returncode != 0:
        fail(f"alert rules fired on {path}:\n{result.stdout}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="obs-smoke")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    workdir = Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    store = workdir / "store"
    job = workdir / "job"
    port = free_port()

    serve_cmd = [
        sys.executable, "-m", "repro", "campaign", "serve",
        "--store", str(store), "--workdir", str(job),
        "--name", "obs-smoke", *SWEEP_ARGS,
        "--lease-timeout", "30", "--range-size", "4",
        "--timeout", str(args.timeout),
        "--metrics-port", str(port),
        "--metrics-out", str(workdir / "coordinator.json"),
        "--timeline-out", str(workdir / "coordinator.jsonl"),
    ]
    worker_cmds = [
        [sys.executable, "-m", "repro", "campaign", "work",
         "--workdir", str(job), "--worker-id", f"smoke-w{index}",
         "--wait-for-job", "60",
         "--metrics-out", str(workdir / f"worker{index}.json")]
        for index in range(args.workers)
    ]

    env = run_env()
    serve_log = (workdir / "serve.log").open("w")
    serve = subprocess.Popen(serve_cmd, env=env, stdout=serve_log,
                             stderr=subprocess.STDOUT)
    workers = []
    for index, command in enumerate(worker_cmds):
        log = (workdir / f"worker{index}.log").open("w")
        workers.append((subprocess.Popen(command, env=env, stdout=log,
                                         stderr=subprocess.STDOUT), log))

    # ---- mid-run: scrape and validate the coordinator's /metrics ----- #
    deadline = time.monotonic() + args.timeout
    live_series: dict[str, list] | None = None
    scrapes = 0
    try:
        while serve.poll() is None:
            if time.monotonic() > deadline:
                fail("job did not complete within the timeout")
            body = scrape(port)
            if body is not None:
                parsed = parse_prometheus(body)
                scrapes += 1
                # Keep the richest scrape seen: early ones may predate
                # the first status poll.
                if all(name in parsed for name in COORDINATOR_SERIES):
                    live_series = parsed
            time.sleep(0.2)
    finally:
        for worker, _log in workers:
            if worker.poll() is None and serve.poll() is not None \
                    and serve.returncode != 0:
                worker.kill()

    if serve.returncode != 0:
        serve_log.close()
        fail(f"campaign serve exited {serve.returncode}; log:\n"
             f"{(workdir / 'serve.log').read_text()}")
    if scrapes == 0:
        fail("never managed a successful mid-run /metrics scrape")
    if live_series is None:
        fail(f"mid-run scrapes ({scrapes}) never exposed all required "
             f"coordinator series {COORDINATOR_SERIES}")
    polls = sum(value for _labels, value
                in live_series["repro_coordinator_polls_total"])
    if polls <= 0:
        fail("repro_coordinator_polls_total never incremented")
    print(f"mid-run scrape ok after {scrapes} scrape(s): "
          f"{len(live_series)} series, {polls:.0f} status polls seen")

    for worker, log in workers:
        code = worker.wait(timeout=60)
        log.close()
        if code != 0:
            index = workers.index((worker, log))
            fail(f"worker {index} exited {code}; log:\n"
                 f"{(workdir / f'worker{index}.log').read_text()}")
    serve_log.close()

    # ---- post-run: snapshots, required series, alert rules ----------- #
    check_snapshot_series(workdir / "coordinator.json", (
        "repro_coordinator_polls_total",
        "repro_coordinator_merged_cells_total",
        "repro_lease_cells",
    ))
    for index in range(args.workers):
        check_snapshot_series(workdir / f"worker{index}.json",
                              WORKER_SERIES)
    timeline = workdir / "coordinator.jsonl"
    if not timeline.exists():
        fail("coordinator timeline was not written")
    kinds = {json.loads(line)["kind"]
             for line in timeline.read_text().splitlines()}
    if "phase" not in kinds:
        fail(f"coordinator timeline has no phase events (kinds: {kinds})")

    for path in sorted(workdir.glob("*.json")):
        run_alerts(path)

    print("obs smoke ok: live scrape validated, worker snapshots "
          "complete, no alert rules firing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
