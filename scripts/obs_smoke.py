#!/usr/bin/env python
"""Observability smoke test (the CI `obs` job).

Exercises the obs layer against a *live* distributed campaign, the way an
operator would watch one:

1. start ``campaign serve --metrics-port`` plus two ``campaign work
   --metrics-out`` processes on a small sweep;
2. scrape ``GET /metrics`` from the coordinator **mid-run**, parse it as
   Prometheus text exposition format v0.0.4 (every sample line must
   parse, every series must carry ``# HELP``/``# TYPE`` headers,
   histogram bucket counts must be cumulative) and require the
   coordinator series (``repro_coordinator_polls_total``,
   ``repro_lease_cells``, ``repro_lease_ranges``);
3. while scraping, require the *federated* series: every worker must
   appear as ``worker="<id>"`` labelled samples on the coordinator's
   ``/metrics``, and within one scrape body every ``worker="_total"``
   counter aggregate must equal the sum of the per-worker samples for
   the same label tuple;
4. after completion, require the worker series
   (``repro_sim_runs_total``, ``repro_store_puts_total``,
   ``repro_worker_cells_total``) in the workers' ``--metrics-out``
   snapshots and run the alert rules (``repro-urb obs check``) over
   every final snapshot — a reclaim storm or failed cells fails CI;
5. reconstruct the distributed trace with ``repro-urb trace view
   --json`` and require a single trace id, zero orphan spans, and
   correctly parented worker → claim → cell span chains from *every*
   worker.

Exits non-zero with a diagnostic on any violated invariant.  The workdir
is left behind so CI can upload it as an artifact.

Usage::

    python scripts/obs_smoke.py [--workdir obs-smoke] [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import socket
import subprocess
import sys
import time
from pathlib import Path
from urllib.error import URLError
from urllib.request import urlopen

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The sweep under test: 3 loss levels x 8 seeds = 24 cells.
SWEEP_ARGS = [
    "--algorithm", "algorithm2", "--n", "5", "--values", "0.0,0.1,0.2",
    "--seeds", "8", "--max-time", "120",
]

#: Series the coordinator's live scrape must expose mid-run.
COORDINATOR_SERIES = (
    "repro_coordinator_polls_total",
    "repro_lease_cells",
    "repro_lease_ranges",
    "repro_lease_workers_active",
)

#: Series every worker's final snapshot must contain.
WORKER_SERIES = (
    "repro_sim_runs_total",
    "repro_store_puts_total",
    "repro_worker_cells_total",
    "repro_worker_cell_seconds",
)

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def parse_prometheus(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Parse text exposition format; fails loudly on any malformed line.

    Returns ``{series_base_name: [(labels, value), ...]}`` where
    ``_bucket``/``_sum``/``_count`` suffixes fold into the histogram's
    base name.
    """
    series: dict[str, list[tuple[dict, float]]] = {}
    typed: dict[str, str] = {}
    helped: set[str] = set()
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split(" ", 3)[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            fail(f"/metrics line {line_number} does not parse: {line!r}")
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in typed and name not in typed:
            fail(f"series {name!r} has no # TYPE header")
        if base not in helped and name not in helped:
            fail(f"series {name!r} has no # HELP header")
        value = float(match.group("value").replace("+Inf", "inf")
                      .replace("-Inf", "-inf"))
        series.setdefault(base, []).append((labels, value))
    # Histogram buckets must be cumulative in ascending ``le`` order.
    for name, kind in typed.items():
        if kind != "histogram":
            continue
        buckets = [(labels, value) for labels, value
                   in series.get(name, [])
                   if "le" in labels]
        by_child: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in buckets:
            child = tuple(sorted((k, v) for k, v in labels.items()
                                 if k != "le"))
            bound = float(labels["le"].replace("+Inf", "inf"))
            by_child.setdefault(child, []).append((bound, value))
        for child, entries in by_child.items():
            entries.sort()
            counts = [count for _, count in entries]
            if counts != sorted(counts):
                fail(f"histogram {name!r} child {child} has "
                     f"non-cumulative buckets: {counts}")
    return series


def scrape(port: int) -> str | None:
    try:
        with urlopen(f"http://127.0.0.1:{port}/metrics",
                     timeout=2.0) as response:
            content_type = response.headers.get("Content-Type", "")
            if "version=0.0.4" not in content_type:
                fail(f"unexpected /metrics Content-Type {content_type!r}")
            return response.read().decode("utf-8")
    except (URLError, OSError, ConnectionError):
        return None


def check_snapshot_series(path: Path, required: tuple[str, ...]) -> None:
    if not path.exists():
        fail(f"expected snapshot {path} was not written")
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("snapshot_version") != 1:
        fail(f"{path}: unexpected snapshot_version "
             f"{data.get('snapshot_version')!r}")
    missing = [name for name in required
               if name not in data.get("metrics", {})]
    if missing:
        fail(f"{path} is missing required series: {missing} "
             f"(has: {sorted(data.get('metrics', {}))})")


def check_federated_totals(
        series: dict[str, list[tuple[dict, float]]]) -> int:
    """Every ``worker="_total"`` sample must equal the sum of the
    per-worker samples for the same label tuple, within one scrape body
    (one body = one read of the snapshot files, so no file race).
    Returns the number of aggregates checked."""
    checked = 0
    for name, samples in series.items():
        groups: dict[tuple, dict[str, float]] = {}
        for labels, value in samples:
            if "worker" not in labels:
                continue  # the coordinator's own local series
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "worker"))
            groups.setdefault(key, {})[labels["worker"]] = value
        for key, by_worker in groups.items():
            if "_total" not in by_worker:
                continue
            total = by_worker["_total"]
            partial = sum(v for w, v in by_worker.items() if w != "_total")
            if abs(total - partial) > 1e-9:
                fail(f"federated {name}{dict(key)}: worker=\"_total\" is "
                     f"{total} but per-worker samples sum to {partial}")
            checked += 1
    return checked


def check_trace(workdir: Path, job: Path, env: dict[str, str],
                worker_ids: list[str]) -> None:
    """Reconstruct the distributed trace and verify its invariants:
    one trace id across every span file, a single ``job`` root, no
    orphans, and worker → claim → cell parenting from every worker."""
    command = [sys.executable, "-m", "repro", "trace", "view",
               str(job), str(workdir / "coordinator.jsonl"), "--json"]
    result = subprocess.run(command, env=env, capture_output=True,
                            text=True)
    if result.returncode != 0:
        fail(f"trace view exited {result.returncode}:\n{result.stderr}")
    doc = json.loads(result.stdout)
    if doc["orphan_span_ids"]:
        fail(f"trace has orphan spans: {doc['orphan_span_ids']}")

    trace_ids = set()
    span_files = [workdir / "coordinator.jsonl",
                  *sorted((job / "obs").rglob("*.jsonl"))]
    for path in span_files:
        for line in path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            if record.get("kind") == "span":
                trace_ids.add(record["trace_id"])
    if len(trace_ids) != 1:
        fail(f"expected a single trace id across "
             f"{len(span_files)} span file(s), found {sorted(trace_ids)}")

    spans = doc["spans"]
    roots = [span for span in spans.values()
             if span["parent_span_id"] is None]
    if len(roots) != 1 or roots[0]["name"] != "job":
        fail(f"expected one 'job' root span, got "
             f"{[root['name'] for root in roots]}")
    for worker_id in worker_ids:
        cells = [span for span in spans.values()
                 if span["name"] == "cell" and span["proc"] == worker_id]
        if not cells:
            fail(f"no cell spans recorded by worker {worker_id}")
        for cell in cells:
            claim = spans.get(cell["parent_span_id"] or "")
            if claim is None or claim["name"] != "claim":
                fail(f"cell span {cell['span_id']} ({worker_id}) is not "
                     f"parented to a claim span")
            worker_span = spans.get(claim["parent_span_id"] or "")
            if worker_span is None or worker_span["name"] != "worker":
                fail(f"claim span {claim['span_id']} ({worker_id}) is not "
                     f"parented to a worker span")
            if worker_span["parent_span_id"] != roots[0]["span_id"]:
                fail(f"worker span of {worker_id} is not parented to the "
                     f"job root")
    print(f"trace ok: 1 trace id, {doc['span_count']} spans, "
          f"{doc['cells']['count']} cell spans, no orphans, "
          f"claim->cell chains verified for {len(worker_ids)} worker(s)")


def run_alerts(path: Path) -> None:
    result = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "check", str(path)],
        env=run_env(), capture_output=True, text=True,
    )
    print(result.stdout.rstrip())
    if result.returncode != 0:
        fail(f"alert rules fired on {path}:\n{result.stdout}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default="obs-smoke")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    workdir = Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    store = workdir / "store"
    job = workdir / "job"
    port = free_port()

    serve_cmd = [
        sys.executable, "-m", "repro", "campaign", "serve",
        "--store", str(store), "--workdir", str(job),
        "--name", "obs-smoke", *SWEEP_ARGS,
        "--lease-timeout", "30", "--range-size", "4",
        "--timeout", str(args.timeout),
        "--metrics-port", str(port),
        "--metrics-out", str(workdir / "coordinator.json"),
        "--timeline-out", str(workdir / "coordinator.jsonl"),
    ]
    worker_cmds = [
        [sys.executable, "-m", "repro", "campaign", "work",
         "--workdir", str(job), "--worker-id", f"smoke-w{index}",
         "--wait-for-job", "60",
         "--metrics-out", str(workdir / f"worker{index}.json")]
        for index in range(args.workers)
    ]

    env = run_env()
    # Tighten the workers' snapshot flush cadence so the mid-run scrape
    # reliably sees federated series on a fast 24-cell job.
    env["REPRO_OBS_FLUSH_INTERVAL"] = "0.2"
    serve_log = (workdir / "serve.log").open("w")
    serve = subprocess.Popen(serve_cmd, env=env, stdout=serve_log,
                             stderr=subprocess.STDOUT)
    workers = []
    for index, command in enumerate(worker_cmds):
        log = (workdir / f"worker{index}.log").open("w")
        workers.append((subprocess.Popen(command, env=env, stdout=log,
                                         stderr=subprocess.STDOUT), log))

    # ---- mid-run: scrape and validate the coordinator's /metrics ----- #
    deadline = time.monotonic() + args.timeout
    live_series: dict[str, list] | None = None
    federated_series: dict[str, list] | None = None
    scrapes = 0
    try:
        while serve.poll() is None:
            if time.monotonic() > deadline:
                fail("job did not complete within the timeout")
            body = scrape(port)
            if body is not None:
                parsed = parse_prometheus(body)
                scrapes += 1
                # Keep the richest scrape seen: early ones may predate
                # the first status poll.
                if all(name in parsed for name in COORDINATOR_SERIES):
                    live_series = parsed
                # Keep the last scrape carrying federated aggregates.
                if any("_total" == labels.get("worker")
                       for samples in parsed.values()
                       for labels, _value in samples):
                    federated_series = parsed
            time.sleep(0.2)
    finally:
        for worker, _log in workers:
            if worker.poll() is None and serve.poll() is not None \
                    and serve.returncode != 0:
                worker.kill()

    if serve.returncode != 0:
        serve_log.close()
        fail(f"campaign serve exited {serve.returncode}; log:\n"
             f"{(workdir / 'serve.log').read_text()}")
    if scrapes == 0:
        fail("never managed a successful mid-run /metrics scrape")
    if live_series is None:
        fail(f"mid-run scrapes ({scrapes}) never exposed all required "
             f"coordinator series {COORDINATOR_SERIES}")
    polls = sum(value for _labels, value
                in live_series["repro_coordinator_polls_total"])
    if polls <= 0:
        fail("repro_coordinator_polls_total never incremented")
    print(f"mid-run scrape ok after {scrapes} scrape(s): "
          f"{len(live_series)} series, {polls:.0f} status polls seen")

    for worker, log in workers:
        code = worker.wait(timeout=60)
        log.close()
        if code != 0:
            index = workers.index((worker, log))
            fail(f"worker {index} exited {code}; log:\n"
                 f"{(workdir / f'worker{index}.log').read_text()}")
    serve_log.close()

    # ---- post-run: snapshots, required series, alert rules ----------- #
    check_snapshot_series(workdir / "coordinator.json", (
        "repro_coordinator_polls_total",
        "repro_coordinator_merged_cells_total",
        "repro_lease_cells",
    ))
    for index in range(args.workers):
        check_snapshot_series(workdir / f"worker{index}.json",
                              WORKER_SERIES)
    timeline = workdir / "coordinator.jsonl"
    if not timeline.exists():
        fail("coordinator timeline was not written")
    kinds = {json.loads(line)["kind"]
             for line in timeline.read_text().splitlines()}
    # A traced coordinator upgrades its phase records to spans and emits
    # clock anchors from its lease-table polls.
    for required_kind in ("span", "anchor"):
        if required_kind not in kinds:
            fail(f"coordinator timeline has no {required_kind!r} events "
                 f"(kinds: {kinds})")

    # ---- federation: per-worker series + exact _total aggregates ----- #
    if federated_series is None:
        fail("no mid-run scrape ever carried federated worker=\"_total\" "
             "aggregates")
    for worker_index in range(args.workers):
        worker_id = f"smoke-w{worker_index}"
        seen = any(labels.get("worker") == worker_id
                   for samples in federated_series.values()
                   for labels, _value in samples)
        if not seen:
            fail(f"federated /metrics never showed worker={worker_id!r} "
                 f"samples")
    aggregates = check_federated_totals(federated_series)
    if aggregates == 0:
        fail("federated scrape carried no checkable _total aggregates")
    print(f"federation ok: {aggregates} worker=\"_total\" aggregate(s) "
          f"equal their per-worker sums")

    # ---- tracing: one causally-consistent span tree ------------------ #
    check_trace(workdir, job, env,
                [f"smoke-w{index}" for index in range(args.workers)])

    for path in sorted(workdir.glob("*.json")):
        run_alerts(path)

    print("obs smoke ok: live scrape validated, federation aggregates "
          "exact, trace tree consistent, worker snapshots complete, "
          "no alert rules firing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
