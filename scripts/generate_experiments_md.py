#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every registered experiment.

Usage::

    python scripts/generate_experiments_md.py [--seeds 3] [--quick]

The file records, for every experiment (the paper has no measured tables or
figures, so these are the library's paper-style evaluation artefacts — see
DESIGN.md §4): the claim from the paper it exercises, the expected shape of
the result, and the tables/series actually measured by this run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import registry

#: Per-experiment claim text: what the paper states, and what shape the
#: measured result must therefore have.
CLAIMS = {
    "E1": (
        "Theorems 1 and 3: Algorithm 1 implements URB whenever a majority of "
        "processes is correct; Algorithm 2 implements URB with any number of "
        "crashes when enriched with AΘ and AP*.",
        "Every run in every configuration satisfies Validity, Uniform "
        "Agreement and Uniform Integrity (all three 'ok' columns equal the "
        "'runs' column).",
    ),
    "E2": (
        "§II/§III: fair lossy channels only guarantee delivery through "
        "retransmission, so loss slows delivery but never breaks it; the "
        "'fast delivery' remark notes Algorithm 1 can deliver on ACKs alone.",
        "Mean delivery latency grows with the loss probability for both "
        "algorithms; Algorithm 1 delivers slightly earlier than Algorithm 2 "
        "(majority of ACKs vs ACKs from every correct process).",
    ),
    "E3": (
        "§V-B/Theorem 3: Algorithm 1 is non-quiescent (correct processes "
        "broadcast delivered messages forever); Algorithm 2 is quiescent.",
        "Algorithm 1's cumulative send count grows linearly until the "
        "horizon; Algorithm 2's flattens shortly after delivery and its runs "
        "are flagged quiescent.",
    ),
    "E4": (
        "Theorem 3: Algorithm 2 eventually stops sending in every run.",
        "Quiescence is reached in every run; the time of the last send grows "
        "with the loss probability and with the AP* detection delay.",
    ),
    "E5": (
        "Algorithm structure (§III/§VI): one broadcast costs Θ(n²) MSG copies "
        "per retransmission round plus an n-way ACK broadcast per reception.",
        "Latency stays roughly flat in n while total traffic to delivery "
        "grows super-linearly.",
    ),
    "E6": (
        "Theorem 2: URB is unsolvable in the bare model when t >= n/2; the "
        "proof's run R2 partitions the system and crashes the delivering "
        "half.",
        "With a sub-majority ACK threshold every adversarial run delivers on "
        "the S1 side and violates Uniform Agreement; with the proper "
        "majority threshold every run blocks instead (safe but not live).",
    ),
    "E7": (
        "§V: the failure detectors are oracles; realistic implementations "
        "converge after a detection delay, which affects only liveness.",
        "Mean delivery latency and quiescence time grow with the detection "
        "delay; the URB properties hold for every delay (safety unaffected).",
    ),
    "E8": (
        "§III vs §VI: Algorithm 1 requires t < n/2; Algorithm 2 tolerates up "
        "to n-1 crashes.",
        "Algorithm 1 stops delivering (Validity fails, safety holds) once "
        "half or more of the processes crash; Algorithm 2 delivers and "
        "satisfies all properties for every crash count.",
    ),
    "E9": (
        "§I motivation: weaker broadcast abstractions lose messages or leave "
        "the system inconsistent when senders crash over lossy channels.",
        "best_effort reaches only partial coverage and violates agreement; "
        "the URB protocols reach full coverage and preserve uniform "
        "agreement in every run.",
    ),
    "E10": (
        "Design choices documented in DESIGN.md §3.3/§3.4 (oracle "
        "dissemination policy, retirement rule, strict vs robust counter "
        "comparison, fairness guard, eager first broadcast).",
        "The paper's configuration (prescient oracle, retirement enabled) "
        "delivers, quiesces and satisfies URB even with a minority of "
        "correct processes; disabling retirement removes quiescence; the "
        "strict equality variant is more brittle under converging detectors.",
    ),
}

HEADER = """\
# EXPERIMENTS — paper claims vs. measured results

The paper (Tang, Larrea, Arévalo, Jiménez 2015) is a theory paper: it proves
its claims and reports **no measured tables or figures**.  The experiments
below are therefore the evaluation suite this reproduction defines for it
(DESIGN.md §4 maps each one to the paper claim it exercises and to the
modules/benchmarks that implement it).  For every experiment this file
records the claim, the expected shape of the result, and the actual numbers
measured on this machine.

* Regenerate with: `python scripts/generate_experiments_md.py`
* Run a single experiment: `python -m repro run E3`
* Benchmark (quick) versions of every experiment: `pytest benchmarks/ --benchmark-only`

Numbers vary slightly with the seed set and machine; the *shapes* asserted in
the "Expected shape" paragraphs are also checked mechanically by the
integration tests (`tests/integration/test_experiments_and_cli.py`) and the
benchmark harness (`benchmarks/`).
"""


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seeds", type=int, default=None)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent / "EXPERIMENTS.md")
    args = parser.parse_args()

    sections = [HEADER]
    for experiment_id in registry.experiment_ids():
        entry = registry.get_experiment(experiment_id)
        started = time.time()
        result = entry.run(seeds=args.seeds, quick=args.quick)
        elapsed = time.time() - started
        claim, expectation = CLAIMS[experiment_id]
        sections.append(f"\n## {experiment_id} — {entry.title}\n")
        sections.append(f"**Paper claim.** {claim}\n")
        sections.append(f"**Expected shape.** {expectation}\n")
        params = ", ".join(f"{k}={v}" for k, v in sorted(result.parameters.items()))
        sections.append(f"**Run parameters.** {params} (wall-clock {elapsed:.1f}s)\n")
        sections.append("**Measured.**\n")
        sections.append("```text")
        for artifact in result.artifacts:
            sections.append(artifact.render())
            sections.append("")
        sections.append("```")
        print(f"{experiment_id}: done in {elapsed:.1f}s", file=sys.stderr)

    args.output.write_text("\n".join(sections) + "\n", encoding="utf-8")
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
