#!/usr/bin/env python
"""Campaign kill/resume smoke test (the CI `campaign` and `distributed` jobs).

Drives the ``repro-urb campaign`` CLI the way an operator would:

1. start a small sweep campaign as a subprocess and SIGKILL it mid-run;
2. re-run the identical command with ``--resume`` and assert — via the
   report's store-hit counters — that **zero** already-persisted cells were
   recomputed;
3. run the same sweep single-shot into a fresh store and assert the two
   aggregate tables are byte-identical.

With ``--distributed`` it instead exercises the coordinator/worker path
(the CI `distributed` job):

1. start ``campaign serve`` plus three ``campaign work`` processes;
2. SIGKILL one worker while it demonstrably holds a lease with recorded
   progress, and assert the lease table shows the lease was reclaimed;
3. assert the merged store is complete, the dead worker's partial store
   deduplicated against the re-executed cells, and the aggregate table is
   byte-identical to a single-shot run of the same sweep.

Exits non-zero (with a diagnostic) on any violated invariant.  The store
directory is left behind so CI can upload it as an artifact.

Usage::

    python scripts/campaign_smoke.py [--workdir campaign-smoke] [--parallel 2]
    python scripts/campaign_smoke.py --distributed [--workdir dist-smoke]
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The sweep under test: 3 loss levels x 8 seeds = 24 cells.
SWEEP_ARGS = [
    "--algorithm", "algorithm2", "--n", "5", "--values", "0.0,0.1,0.2",
    "--seeds", "8", "--max-time", "120",
]

REPORT_PATTERN = re.compile(
    r"(\d+) cell\(s\) — (\d+) cached, (\d+) executed"
)


def campaign_command(store: Path, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "campaign", "run",
        "--store", str(store), "--name", "smoke", *SWEEP_ARGS, *extra,
    ]


def run_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def stored_cells(store: Path) -> int:
    index = store / "index.sqlite"
    if not index.exists():
        return 0
    with sqlite3.connect(index) as db:
        return int(db.execute("SELECT COUNT(*) FROM results").fetchone()[0])


def fail(message: str) -> "int":
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    return 1


def extract_table(output: str) -> str:
    """The aggregate table portion of a `campaign run` stdout."""
    index = output.find("configuration")
    if index < 0:
        raise ValueError(f"no aggregate table in output:\n{output}")
    return output[index:].rstrip()


# --------------------------------------------------------------------------- #
# distributed phase (--distributed): 3 workers, SIGKILL one mid-lease
# --------------------------------------------------------------------------- #
def lease_query(job: Path, sql: str, params: tuple = ()) -> int:
    """One integer aggregate off the job's lease table (0 before it exists
    or while it is briefly locked)."""
    database = job / "leases.sqlite"
    if not database.exists():
        return 0
    try:
        with sqlite3.connect(database, timeout=5) as connection:
            row = connection.execute(sql, params).fetchone()
            return int(row[0]) if row and row[0] is not None else 0
    except sqlite3.OperationalError:
        return 0


def victim_holds_lease_with_progress(job: Path, worker: str) -> bool:
    """Whether *worker* currently leases a range it has recorded progress
    on — the kill point that guarantees both a reclamation (the range can
    no longer complete) and a store overlap (the recorded cell was
    persisted, and will be re-executed elsewhere)."""
    return lease_query(
        job,
        "SELECT COALESCE(SUM(done_cells), 0) FROM ranges "
        "WHERE state = 'leased' AND worker = ?",
        (worker,),
    ) >= 1


def distributed_smoke(workdir: Path, env: dict[str, str]) -> int:
    job = workdir / "job"
    merged_store = workdir / "merged"
    fresh_store = workdir / "single-shot"

    # ------------------------------------------------------------------ #
    # 1. coordinator + 3 workers; short leases so reclamation is fast
    # ------------------------------------------------------------------ #
    print("starting coordinator and 3 workers, will SIGKILL one mid-lease...")
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "serve",
         "--store", str(merged_store), "--workdir", str(job),
         "--name", "smoke", *SWEEP_ARGS,
         "--lease-timeout", "5", "--range-size", "4",
         "--timeout", "420", "--poll-interval", "0.2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    workers = {
        name: subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "work",
             "--workdir", str(job), "--worker-id", name,
             "--poll-interval", "0.05", "--wait-for-job", "60"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        for name in ("w0", "w1", "w2")
    }
    victim = workers["w0"]

    # ------------------------------------------------------------------ #
    # 2. SIGKILL the victim while it provably holds a lease mid-range
    # ------------------------------------------------------------------ #
    deadline = time.monotonic() + 120
    killed = False
    while time.monotonic() < deadline:
        if serve.poll() is not None or victim.poll() is not None:
            break  # job finished (or victim exited) before the kill landed
        if victim_holds_lease_with_progress(job, "w0"):
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            killed = True
            break
        time.sleep(0.02)
    try:
        serve_out, serve_err = serve.communicate(timeout=420)
    except subprocess.TimeoutExpired:
        serve.kill()
        for process in workers.values():
            process.kill()
        return fail("coordinator did not finish in time")
    for name, process in workers.items():
        if name != "w0" or not killed:
            process.communicate(timeout=120)
    if not killed:
        return fail("never caught the victim worker holding a lease with "
                    "progress — kill point unreachable "
                    f"(serve rc={serve.returncode})")
    print("victim worker w0 SIGKILLed mid-lease")
    if serve.returncode != 0:
        return fail(f"serve failed (rc={serve.returncode}):\n{serve_out}\n"
                    f"{serve_err}")

    # ------------------------------------------------------------------ #
    # 3. the kill must have cost w0 its lease: reclaims recorded, job done
    # ------------------------------------------------------------------ #
    reclaims = lease_query(
        job, "SELECT COALESCE(SUM(attempts - 1), 0) FROM ranges "
             "WHERE attempts > 1")
    print(f"lease reclaims recorded: {reclaims}")
    if reclaims < 1:
        return fail("victim was killed mid-lease but no lease was reclaimed")
    if stored_cells(merged_store) != 24:
        return fail(f"merged store holds {stored_cells(merged_store)} "
                    "cell(s), expected 24")
    overlap = re.search(r"(\d+) already present", serve_out)
    if overlap is None or int(overlap.group(1)) < 1:
        return fail(
            "expected the dead worker's partial store to overlap the "
            f"re-executed cells, but the merge deduplicated none:\n{serve_out}"
        )
    print(f"merge deduplicated {overlap.group(1)} re-executed cell(s) "
          "against the dead worker's partial store")

    # ------------------------------------------------------------------ #
    # 4. byte-identical aggregates vs a single-shot run of the same sweep
    # ------------------------------------------------------------------ #
    single = subprocess.run(
        campaign_command(fresh_store),
        env=env, capture_output=True, text=True, timeout=600,
    )
    if single.returncode != 0:
        return fail(f"single-shot run failed (rc={single.returncode}):\n"
                    f"{single.stdout}\n{single.stderr}")
    distributed_table = extract_table(serve_out)
    single_table = extract_table(single.stdout)
    if distributed_table != single_table:
        return fail(
            "aggregate tables differ between the distributed campaign and "
            f"the single-shot campaign:\n--- distributed ---\n"
            f"{distributed_table}\n--- single-shot ---\n{single_table}"
        )
    print("aggregate table identical to the single-shot run:")
    print(single_table)
    print("SMOKE OK: worker killed mid-lease, lease reclaimed, merge "
          "deduplicated the partial store, aggregates are bit-identical")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", type=Path,
                        default=Path("campaign-smoke"),
                        help="directory for the two stores (kept for CI "
                             "artifact upload)")
    parser.add_argument("--parallel", type=int, default=2,
                        help="worker processes for the killed/resumed run")
    parser.add_argument("--distributed", action="store_true",
                        help="run the coordinator/worker kill-one smoke "
                             "instead of the single-process kill/resume one")
    args = parser.parse_args(argv)

    workdir: Path = args.workdir
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    if args.distributed:
        return distributed_smoke(workdir, run_env())
    killed_store = workdir / "killed"
    fresh_store = workdir / "single-shot"
    env = run_env()

    # ------------------------------------------------------------------ #
    # 1. start the campaign and SIGKILL it once a few cells are persisted
    # ------------------------------------------------------------------ #
    print(f"starting campaign (parallel={args.parallel}), will SIGKILL "
          "mid-run...")
    process = subprocess.Popen(
        campaign_command(killed_store, "--parallel", str(args.parallel)),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if process.poll() is not None:
            break
        if stored_cells(killed_store) >= 4:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            break
        time.sleep(0.02)
    else:
        process.kill()
        return fail("first run neither persisted cells nor finished in time")
    surviving = stored_cells(killed_store)
    if process.returncode == 0 and surviving == 24:
        # Too fast to kill on this machine — still a valid resume test
        # (the resumed run must then recompute nothing at all).
        print("note: first run completed before the kill landed")
    print(f"first run stopped (rc={process.returncode}); "
          f"{surviving} cell(s) persisted")
    if surviving == 0:
        return fail("kill landed before any cell was persisted")

    # ------------------------------------------------------------------ #
    # 2. resume: every surviving cell must be a cache hit, none recomputed
    # ------------------------------------------------------------------ #
    resumed = subprocess.run(
        campaign_command(killed_store, "--parallel", str(args.parallel),
                         "--resume"),
        env=env, capture_output=True, text=True, timeout=300,
    )
    if resumed.returncode != 0:
        return fail(f"resume run failed (rc={resumed.returncode}):\n"
                    f"{resumed.stdout}\n{resumed.stderr}")
    match = REPORT_PATTERN.search(resumed.stdout)
    if match is None:
        return fail(f"no campaign report in resume output:\n{resumed.stdout}")
    total, cached, executed = map(int, match.groups())
    print(f"resume report: {total} cells, {cached} cached, "
          f"{executed} executed")
    if total != 24:
        return fail(f"expected 24 cells, saw {total}")
    if cached != surviving:
        return fail(
            f"{surviving} cell(s) survived the kill but only {cached} were "
            "cache hits — persisted work was recomputed"
        )
    if executed != total - surviving:
        return fail(
            f"expected exactly {total - surviving} executions, saw "
            f"{executed} — resume is not exact"
        )

    # ------------------------------------------------------------------ #
    # 3. single-shot run in a fresh store: identical aggregate table
    # ------------------------------------------------------------------ #
    single = subprocess.run(
        campaign_command(fresh_store),
        env=env, capture_output=True, text=True, timeout=600,
    )
    if single.returncode != 0:
        return fail(f"single-shot run failed (rc={single.returncode}):\n"
                    f"{single.stdout}\n{single.stderr}")
    resumed_table = extract_table(resumed.stdout)
    single_table = extract_table(single.stdout)
    if resumed_table != single_table:
        return fail(
            "aggregate tables differ between the killed+resumed campaign "
            f"and the single-shot campaign:\n--- resumed ---\n"
            f"{resumed_table}\n--- single-shot ---\n{single_table}"
        )
    print("aggregate table identical to the single-shot run:")
    print(single_table)
    print("SMOKE OK: resume recomputed zero persisted cells and aggregates "
          "are bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
