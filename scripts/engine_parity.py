#!/usr/bin/env python
"""CI gate: the vectorized engine must be bit-identical to the reference.

Runs the parity battery (:func:`repro.experiments.parity.parity_cases`)
under every compared backend and fails when any scenario's fingerprint —
trace digest, metrics summary, delivery logs, event stats, channel stats,
final time, stop reason — differs from the reference engine's.

Usage (from the repository root)::

    python scripts/engine_parity.py
    python scripts/engine_parity.py --engines reference,vectorized \
        --artifacts parity-artifacts

On mismatch, one ``parity_<scenario>.json`` digest-diff per failing
scenario is written into ``--artifacts`` (CI uploads the directory) and
the script exits non-zero.  The script also fails if no compared backend
ever took its batched dispatch path — that would make the whole gate
vacuous (everything silently falling back to per-event dispatch *is*
bit-identical, but proves nothing).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.parity import (  # noqa: E402
    DEFAULT_ENGINES,
    check_parity,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--engines", default=",".join(DEFAULT_ENGINES),
                        help="comma-separated engine names; the first is the "
                             "reference fingerprint (default: %(default)s)")
    parser.add_argument("--artifacts", type=Path,
                        default=Path("parity-artifacts"),
                        help="directory for digest-diff JSON on mismatch")
    args = parser.parse_args(argv)

    engines = [name.strip() for name in args.engines.split(",") if name.strip()]
    if len(engines) < 2:
        parser.error("need at least two engines to compare")

    reports = check_parity(engines=engines)
    failed = [report for report in reports if not report.ok]
    batched_runs = 0
    consumed_runs = 0
    for report in reports:
        modes = {run.engine: run.dispatch_mode for run in report.runs}
        batched_runs += sum(1 for mode in modes.values() if mode == "batched")
        consumed_runs += sum(
            1 for run in report.runs if run.consume_mode == "batched"
        )
        verdict = "ok" if report.ok else "MISMATCH " + ",".join(report.mismatched)
        consumes = {run.engine: run.consume_mode for run in report.runs
                    if run.consume_mode is not None}
        print(f"{report.name:24s} {verdict}  modes={modes}  "
              f"consume={consumes}")

    if failed:
        args.artifacts.mkdir(parents=True, exist_ok=True)
        for report in failed:
            path = args.artifacts / f"parity_{report.name}.json"
            path.write_text(json.dumps(report.diff(), indent=2,
                                       sort_keys=True) + "\n")
            print(f"digest-diff written: {path}")
        print(f"FAIL: {len(failed)}/{len(reports)} scenario(s) mismatched")
        return 1

    if batched_runs == 0:
        print("FAIL: no compared backend ever took its batched dispatch path "
              "— the parity gate would be vacuous")
        return 1

    if consumed_runs == 0:
        print("FAIL: no compared backend ever activated the batched receiver "
              "(consume_mode == 'batched') — its parity coverage would be "
              "vacuous")
        return 1

    print(f"parity OK: {len(reports)} scenarios, "
          f"{batched_runs} batched backend runs, "
          f"{consumed_runs} batched-receiver runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
