"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists only
so that legacy editable installs (``pip install -e . --no-use-pep517``) work
on environments whose setuptools lacks wheel support.
"""

from setuptools import setup

setup()
