"""Micro-benchmarks of the library's hot paths.

These complement the experiment macro-benchmarks: they track the cost of the
operations a simulated run is made of (event scheduling, channel transmits,
ACK bookkeeping, failure-detector views, full small runs), which is what
scalability of the harness itself depends on.
"""

import random

from repro.core.messages import TaggedMessage
from repro.core.state import Algorithm2State
from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.failure_detectors.atheta import AThetaOracle
from repro.failure_detectors.labels import Label
from repro.failure_detectors.oracle import GroundTruthOracle
from repro.network.channel import LossyChannel
from repro.network.delay import FixedDelay
from repro.network.loss import BernoulliLoss, LossSpec
from repro.simulation.events import EventKind
from repro.simulation.faults import CrashSchedule
from repro.simulation.scheduler import EventQueue
from repro.workloads.generators import SingleBroadcast


def test_event_queue_throughput(benchmark):
    """Push/pop 10k events through the scheduler."""

    def run():
        queue = EventQueue()
        for i in range(10_000):
            queue.schedule(float(i % 97), EventKind.TICK, target=i % 8)
        while queue:
            queue.pop()
        return queue.popped_count

    assert benchmark(run) == 10_000


def test_channel_transmit_throughput(benchmark):
    """10k transmits through a lossy channel with the fairness guard."""
    channel = LossyChannel(0, 1, BernoulliLoss(0.3, random.Random(0)),
                           FixedDelay(0.2), fairness_bound=25)

    def run():
        for t in range(10_000):
            channel.transmit(t % 50, float(t))
        return channel.stats.attempts

    assert benchmark(run) >= 10_000


def test_ack_bookkeeping_throughput(benchmark):
    """Record 5k labelled ACKs (the Algorithm 2 hot path)."""
    labels = [Label(i) for i in range(8)]
    messages = [TaggedMessage(f"m{i}", i) for i in range(20)]
    rng = random.Random(0)
    events = [
        (messages[rng.randrange(len(messages))], rng.randrange(40),
         frozenset(rng.sample(labels, rng.randrange(len(labels) + 1))))
        for _ in range(5_000)
    ]

    def run():
        state = Algorithm2State()
        for message, ack_tag, label_set in events:
            state.record_labeled_ack(message, ack_tag, label_set)
        return sum(state.distinct_ack_count(m) for m in messages)

    assert benchmark(run) > 0


def test_failure_detector_view_cost(benchmark):
    """Query the AΘ oracle 2k times (once per ACK in a large run)."""
    schedule = CrashSchedule.crash_at(8, {6: 5.0, 7: 9.0})
    oracle = GroundTruthOracle(schedule, rng=random.Random(0))
    atheta = AThetaOracle(oracle, detection_delay=2.0, learn_delay=3.0,
                          rng=random.Random(1))

    def run():
        total = 0
        for i in range(2_000):
            view = atheta.view(i % 8, float(i % 60))
            total += len(view)
        return total

    assert benchmark(run) > 0


def test_full_algorithm1_run(benchmark):
    """One complete Algorithm 1 run (n=6, lossy channels, early stop)."""
    scenario = Scenario(
        name="bench-a1", algorithm="algorithm1", n_processes=6,
        loss=LossSpec.bernoulli(0.2), max_time=80.0,
        stop_when_all_correct_delivered=True,
        workload=SingleBroadcast(sender=0, time=0.0), trace_enabled=False,
    )
    result = benchmark.pedantic(lambda: run_scenario(scenario), rounds=3,
                                iterations=1)
    assert result.metrics.deliveries == 6


def test_full_algorithm2_run(benchmark):
    """One complete Algorithm 2 run (n=6, lossy channels, crash, quiescence)."""
    scenario = Scenario(
        name="bench-a2", algorithm="algorithm2", n_processes=6,
        loss=LossSpec.bernoulli(0.2), crashes={5: 2.0}, max_time=120.0,
        stop_when_quiescent=True, drain_grace_period=2.0,
        workload=SingleBroadcast(sender=0, time=0.0), trace_enabled=False,
    )
    result = benchmark.pedantic(lambda: run_scenario(scenario), rounds=3,
                                iterations=1)
    assert result.metrics.deliveries >= 5
