"""Benchmark + regeneration of E10 (Table 5 — ablations)."""

from conftest import run_experiment_once
from repro.experiments import ablations


def test_e10_ablations(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, ablations.run, **quick_kwargs)
    table = result.artifacts[0]
    rows = {row[0]: row for row in table.rows}
    runs = table.rows[0][1]
    # The paper's configuration (prescient oracle) delivers, quiesces and
    # satisfies the URB properties even with a minority of correct processes.
    prescient = rows["a) prescient AΘ/AP* (CORRECT_ONLY), minority correct"]
    assert prescient[2] == runs and prescient[3] == runs and prescient[4] == runs
    # Retirement disabled: still correct, but never quiescent.
    no_retire = rows["b) retirement disabled"]
    assert no_retire[4] == runs
    assert no_retire[3] == 0
