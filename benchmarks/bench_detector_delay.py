"""Benchmark + regeneration of E7 (Figure 5 — detection delay impact)."""

from conftest import run_experiment_once
from repro.experiments import detector_delay


def test_e7_detector_delay(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, detector_delay.run, **quick_kwargs)
    figure = result.artifacts[0]
    # Safety is unaffected by the detection delay.
    assert all(fraction == 1.0
               for fraction in figure.column("URB properties hold fraction"))
    # Liveness degrades monotonically (larger delay, later delivery).
    latencies = figure.column("mean delivery latency")
    assert latencies == sorted(latencies)
