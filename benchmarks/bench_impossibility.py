"""Benchmark + regeneration of E6 (Table 2 — impossibility demonstration)."""

from conftest import run_experiment_once
from repro.experiments import impossibility


def test_e6_impossibility(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, impossibility.run, **quick_kwargs)
    table = result.artifacts[0]
    violations = table.column("uniform agreement violations")
    blocked = table.column("runs blocked (no delivery)")
    runs = table.column("runs")
    # Sub-majority threshold: every run violates Uniform Agreement.
    assert violations[0] == runs[0]
    # Proper majority: no violation, but every run blocks.
    assert violations[1] == 0
    assert blocked[1] == runs[1]
