"""Benchmark harness: named scenarios, normalized results, baseline compare.

The harness complements the ``bench_*.py`` pytest-benchmark files with a
plain-Python subsystem that CI can run without plugins:

* a registry of named benchmark scenarios — engine-level hot-path loads
  (large-n quiescence, flood, lossy channels, raw event-queue churn) plus
  wrappers around the experiment modules the ``bench_*.py`` files drive;
* a runner that measures wall time, dispatched events/sec, protocol
  ops/sec (sends) and peak RSS for each scenario;
* a *calibration* loop whose throughput is measured on the same machine in
  the same session, so scores can be normalized (``events_per_sec /
  calibration_mops``) and compared across machines with less noise;
* baseline load/compare helpers used by ``scripts/bench.py`` and CI.

Results are serialised as ``BENCH_<name>.json`` (one file per scenario,
schema below) and the committed baseline lives in
``benchmarks/baseline.json``.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

from repro.experiments.config import Scenario
from repro.experiments.runner import build_engine
from repro.network.delay import DelaySpec
from repro.network.loss import LossSpec
from repro.simulation.events import EventKind
from repro.simulation.metrics import MetricsCollector, MetricsLevel
from repro.simulation.scheduler import EventQueue

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default committed baseline location.
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

#: Default regression tolerance (fraction of the baseline score).
DEFAULT_TOLERANCE = 0.25


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far, in KiB.

    ``ru_maxrss`` is a process-lifetime high-water mark: when several
    scenarios run in one process, later scenarios inherit earlier peaks.
    Results therefore also carry a per-scenario ``rss_delta_kb`` (current
    RSS growth across the timed region), which is the field to watch for
    scenario-attributable memory changes.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    return rss // 1024 if sys.platform == "darwin" else rss


def current_rss_kb() -> int:
    """Current resident set size in KiB (0 where /proc is unavailable)."""
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def calibrate(rounds: int = 3) -> float:
    """Measure this machine's throughput on a fixed pure-Python workload.

    Returns the best observed rate in mega-operations per second.  The
    workload (dict churn + integer arithmetic) is deliberately similar in
    flavour to the simulator's hot path, so ``events_per_sec / mops`` is a
    machine-independent-ish score suitable for cross-run comparison.
    """
    best = 0.0
    n = 200_000
    for _ in range(rounds):
        counts: dict[int, int] = {}
        start = time.perf_counter()
        acc = 0
        for i in range(n):
            key = i & 63
            counts[key] = counts.get(key, 0) + 1
            acc += key
        elapsed = time.perf_counter() - start
        best = max(best, n / elapsed / 1e6)
    return best


@dataclass
class BenchResult:
    """One scenario's normalized measurement."""

    name: str
    wall_time_s: float
    events: int
    events_per_sec: float
    ops: int
    ops_per_sec: float
    peak_rss_kb: int
    calibration_mops: float
    quick: bool
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def normalized_score(self) -> float:
        """Machine-normalized throughput: events/sec per calibration Mop/s."""
        if self.calibration_mops <= 0:
            return self.events_per_sec
        return self.events_per_sec / self.calibration_mops

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (the ``BENCH_*.json`` schema)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "wall_time_s": self.wall_time_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "peak_rss_kb": self.peak_rss_kb,
            "calibration_mops": self.calibration_mops,
            "normalized_score": self.normalized_score,
            "quick": self.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "meta": dict(self.meta),
        }

    def write(self, directory: Path) -> Path:
        """Write ``BENCH_<name>.json`` into *directory* and return the path."""
        path = Path(directory) / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path


@dataclass(frozen=True)
class BenchSpec:
    """A registered benchmark scenario.

    ``run`` receives ``quick`` and returns ``(wall_time_s, events, ops,
    meta)`` — the timed region must cover only the measured work, never
    setup.
    """

    name: str
    description: str
    run: Callable[[bool], tuple[float, int, int, dict[str, Any]]]
    default: bool = True


BENCH_SCENARIOS: dict[str, BenchSpec] = {}


def register_bench(name: str, description: str, *, default: bool = True):
    """Decorator registering a benchmark scenario under *name*."""

    def decorator(fn: Callable[[bool], tuple[float, int, int, dict[str, Any]]]):
        BENCH_SCENARIOS[name] = BenchSpec(name, description, fn, default)
        return fn

    return decorator


def _run_engine_scenario(
    scenario: Scenario, *, metrics_level: Optional[MetricsLevel] = None
) -> tuple[float, int, int, dict[str, Any]]:
    """Build the engine untimed, then time ``engine.run()`` alone.

    ``metrics_level=MetricsLevel.COUNTERS`` puts the collector in its
    aggregate-counters-only mode — the intended configuration for large
    benchmark sweeps, where per-event timeline/latency lists would dominate
    time and memory without being read.
    """
    engine = build_engine(scenario)
    if metrics_level is not None:
        engine.metrics = MetricsCollector(level=metrics_level)
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    summary = result.metrics_summary()
    meta = {
        "n_processes": scenario.n_processes,
        "algorithm": scenario.algorithm,
        "stop_reason": result.stop_reason,
        "final_time": result.final_time,
        "total_sends": summary.total_sends,
        "deliveries": summary.deliveries,
    }
    return elapsed, result.event_stats.total, summary.total_sends, meta


@register_bench(
    "quiescence_large_n",
    "Algorithm 2 quiescence run at large n (the paper's E4 regime, scaled up)",
)
def _bench_quiescence_large_n(quick: bool):
    n = 16 if quick else 40
    scenario = Scenario(
        name="bench-quiescence-large-n",
        algorithm="algorithm2",
        n_processes=n,
        seed=1234,
        loss=LossSpec.bernoulli(0.05),
        delay=DelaySpec.uniform(0.05, 0.5),
        workload="burst",
        metadata={"burst_size": n},
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=400.0,
        trace_enabled=False,
    )
    return _run_engine_scenario(scenario, metrics_level=MetricsLevel.COUNTERS)


@register_bench(
    "quiescence_vectorized",
    "The quiescence_large_n load under the vectorized engine backend",
)
def _bench_quiescence_vectorized(quick: bool):
    n = 16 if quick else 40
    scenario = Scenario(
        name="bench-quiescence-vectorized",
        algorithm="algorithm2",
        n_processes=n,
        seed=1234,
        loss=LossSpec.bernoulli(0.05),
        delay=DelaySpec.uniform(0.05, 0.5),
        workload="burst",
        metadata={"burst_size": n},
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=400.0,
        trace_enabled=False,
        engine="vectorized",
    )
    # Identical load and seed to quiescence_large_n: the pair quantifies the
    # backend speedup on the same machine, and parity (same dispatched-event
    # count) is CI-gated separately by scripts/engine_parity.py.
    return _run_engine_scenario(scenario, metrics_level=MetricsLevel.COUNTERS)


@register_bench(
    "obs_overhead",
    "Quiescence load with the obs registry disabled vs fully enabled",
)
def _bench_obs_overhead(quick: bool):
    """Quantify the observability tax on the hottest engine path.

    Runs the quiescence_large_n load twice — registry disabled (the
    default, and the configuration the 2% budget applies to) and fully
    enabled with a live timeline sink — and reports both throughputs
    plus the relative overhead in ``meta``.  The timed value is the
    *disabled* run, so baseline comparisons keep gating the
    nobody-asked-for-obs path.
    """
    import io

    from repro import obs

    n = 16 if quick else 40
    scenario = Scenario(
        name="bench-obs-overhead",
        algorithm="algorithm2",
        n_processes=n,
        seed=1234,
        loss=LossSpec.bernoulli(0.05),
        delay=DelaySpec.uniform(0.05, 0.5),
        workload="burst",
        metadata={"burst_size": n},
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=400.0,
        trace_enabled=False,
    )

    obs.reset()
    disabled = _run_engine_scenario(scenario,
                                    metrics_level=MetricsLevel.COUNTERS)
    obs.reset()
    obs.enable()
    previous = obs.set_timeline(obs.Timeline(io.StringIO()))
    try:
        enabled = _run_engine_scenario(scenario,
                                       metrics_level=MetricsLevel.COUNTERS)
    finally:
        obs.set_timeline(previous)
        obs.reset()

    wall_disabled, events, sends, meta = disabled
    wall_enabled = enabled[0]
    meta = dict(meta)
    meta.update({
        "disabled_wall_time_s": wall_disabled,
        "enabled_wall_time_s": wall_enabled,
        "disabled_events_per_s": events / wall_disabled,
        "enabled_events_per_s": enabled[1] / wall_enabled,
        "overhead_pct":
            (wall_enabled - wall_disabled) / wall_disabled * 100.0,
    })
    return wall_disabled, events, sends, meta


@register_bench(
    "flood_horizon",
    "Algorithm 1 all-to-all flood to the horizon (never quiescent)",
)
def _bench_flood_horizon(quick: bool):
    n = 8 if quick else 14
    scenario = Scenario(
        name="bench-flood-horizon",
        algorithm="algorithm1",
        n_processes=n,
        seed=99,
        workload="all_to_all",
        max_time=25.0 if quick else 60.0,
        trace_enabled=False,
    )
    return _run_engine_scenario(scenario, metrics_level=MetricsLevel.COUNTERS)


@register_bench(
    "lossy_channels",
    "Algorithm 2 under heavy Bernoulli loss and exponential delays",
)
def _bench_lossy_channels(quick: bool):
    n = 10 if quick else 24
    scenario = Scenario(
        name="bench-lossy-channels",
        algorithm="algorithm2",
        n_processes=n,
        seed=7,
        loss=LossSpec.bernoulli(0.3),
        delay=DelaySpec.exponential(mean=0.4, cap=5.0),
        workload="burst",
        metadata={"burst_size": max(4, n // 2)},
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=400.0,
        trace_enabled=False,
    )
    return _run_engine_scenario(scenario, metrics_level=MetricsLevel.COUNTERS)


@register_bench(
    "lossy_batched",
    "Same load as lossy_channels but with vectorized (batched) sampling",
)
def _bench_lossy_batched(quick: bool):
    n = 10 if quick else 24
    scenario = Scenario(
        name="bench-lossy-batched",
        algorithm="algorithm2",
        n_processes=n,
        seed=7,
        loss=LossSpec.bernoulli(0.3, batch=1024),
        delay=DelaySpec.exponential(mean=0.4, cap=5.0, batch=1024),
        workload="burst",
        metadata={"burst_size": max(4, n // 2)},
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=400.0,
        trace_enabled=False,
    )
    return _run_engine_scenario(scenario, metrics_level=MetricsLevel.COUNTERS)


@register_bench(
    "tracing_full",
    "Mid-size Algorithm 2 run with full tracing and metrics recording on",
)
def _bench_tracing_full(quick: bool):
    n = 8 if quick else 16
    scenario = Scenario(
        name="bench-tracing-full",
        algorithm="algorithm2",
        n_processes=n,
        seed=5,
        loss=LossSpec.bernoulli(0.1),
        delay=DelaySpec.uniform(0.05, 0.5),
        workload="burst",
        metadata={"burst_size": n},
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=400.0,
        trace_enabled=True,
    )
    return _run_engine_scenario(scenario)


@register_bench(
    "event_queue_churn",
    "Raw EventQueue push/pop churn (no protocol work)",
)
def _bench_event_queue_churn(quick: bool):
    # Quick mode still runs a sizeable batch: shorter loops are dominated
    # by timer/scheduler noise, which a 25% CI regression gate cannot absorb.
    n_ops = 200_000 if quick else 500_000
    queue = EventQueue()
    kinds = (EventKind.RECEIVE, EventKind.TICK, EventKind.RECEIVE)
    # Pre-fill so the heap has realistic depth, then run a pop/push cycle
    # that mirrors the engine's steady state (each popped event schedules
    # one or two successors).
    for i in range(256):
        queue.schedule(float(i % 17), kinds[i % 3], target=i % 32)
    start = time.perf_counter()
    pushed = 256
    popped = 0
    while popped < n_ops:
        event = queue.pop()
        popped += 1
        t = event.time
        queue.schedule(t + 1.0, kinds[popped % 3], target=popped % 32)
        pushed += 1
        if popped % 3 == 0:
            queue.schedule(t + 2.5, EventKind.TICK, target=popped % 32)
            pushed += 1
        if popped % 4096 == 0:
            queue.drop_pending(EventKind.TICK)
    elapsed = time.perf_counter() - start
    total = pushed + popped
    return elapsed, total, total, {"pushed": pushed, "popped": popped}


@register_bench(
    "explore_quick",
    "Schedule-explorer throughput: random-walk schedules over a small config",
)
def _bench_explore_quick(quick: bool):
    from repro.explore import Explorer

    budget = 40 if quick else 120
    scenario = Scenario(
        name="bench-explore-quick",
        algorithm="algorithm1",
        n_processes=4,
        seed=11,
        max_time=120.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
    )
    explorer = Explorer(scenario, strategy="random_walk", budget=budget,
                        parallel=1, shrink=False)
    start = time.perf_counter()
    report = explorer.run()
    elapsed = time.perf_counter() - start
    # events == ops == schedules, so events_per_sec (the gated normalized
    # score) is explorer throughput in schedules/s.
    meta = {
        "budget": budget,
        "schedules_run": report.schedules_run,
        "unique_schedules": report.unique_schedules,
        "counterexamples": len(report.counterexamples),
    }
    return elapsed, report.schedules_run, report.schedules_run, meta


@register_bench(
    "campaign_store",
    "Result-store throughput: content hashing, puts, cache hits and queries",
)
def _bench_campaign_store(quick: bool):
    import dataclasses
    import shutil
    import tempfile

    from repro.campaigns import ResultStore, scenario_cell_key
    from repro.experiments.runner import run_scenario

    cells = 150 if quick else 400
    # One real (untimed) simulation provides the payload; seed variants give
    # each put a distinct content address, so the timed region measures pure
    # store work (hash + compress + SQLite), not the simulator.
    template = run_scenario(Scenario(
        name="bench-campaign-store",
        algorithm="algorithm2",
        n_processes=4,
        seed=0,
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=120.0,
    ))
    results = [
        dataclasses.replace(template,
                            scenario=template.scenario.with_seed(seed))
        for seed in range(cells)
    ]
    root = Path(tempfile.mkdtemp(prefix="bench-campaign-store-"))
    try:
        with ResultStore(root) as store:
            start = time.perf_counter()
            keys = [scenario_cell_key(r.scenario) for r in results]
            for key, result in zip(keys, results):
                store.put(result, cell_key=key)
            # The resume hot path: every cell answered from the index.
            # (Plain check, not assert: python -O must not change the work
            # the op count claims was measured.)
            misses = sum(1 for key in keys if not store.contains(key))
            if misses:
                raise RuntimeError(f"{misses} stored cell(s) missed")
            hit_rows = sum(1 for key in keys if store.get(key) is not None)
            queried = len(store.query(algorithm="algorithm2"))
            elapsed = time.perf_counter() - start
            ops = 4 * cells  # hash + put + contains + get per cell
            meta = {
                "cells": cells,
                "hits": store.hits,
                "queried": queried,
                "hit_rows": hit_rows,
            }
        return elapsed, ops, ops, meta
    finally:
        shutil.rmtree(root, ignore_errors=True)


@register_bench(
    "campaign_merge",
    "Store-merge throughput: union of sharded worker stores with overlap",
)
def _bench_campaign_merge(quick: bool):
    import dataclasses
    import shutil
    import tempfile

    from repro.campaigns import ResultStore, scenario_cell_key
    from repro.campaigns.distributed import merge_stores
    from repro.experiments.runner import run_scenario

    # Quick mode still merges a sizeable shard set: a merge of a few dozen
    # cells finishes in milliseconds, where SQLite fsync jitter alone would
    # blow the CI regression gate.
    cells = 480 if quick else 1200
    shards = 4
    # One real (untimed) simulation provides the payload; seed variants give
    # distinct content addresses.  Each shard holds its slice plus a few
    # cells of its neighbour's — the overlap a reclaimed lease produces —
    # so the timed region covers both the copy path and the
    # already-present semantic-compare path.
    template = run_scenario(Scenario(
        name="bench-campaign-merge",
        algorithm="algorithm2",
        n_processes=4,
        seed=0,
        stop_when_quiescent=True,
        drain_grace_period=2.0,
        max_time=120.0,
    ))
    results = [
        dataclasses.replace(template,
                            scenario=template.scenario.with_seed(seed))
        for seed in range(cells)
    ]
    overlap = max(1, cells // shards // 4)
    root = Path(tempfile.mkdtemp(prefix="bench-campaign-merge-"))
    try:
        shard_roots = []
        for shard in range(shards):
            shard_root = root / f"worker-{shard}"
            shard_roots.append(shard_root)
            lo = shard * cells // shards
            hi = (shard + 1) * cells // shards
            with ResultStore(shard_root) as store:
                for result in results[lo:min(hi + overlap, cells)]:
                    store.put(result,
                              cell_key=scenario_cell_key(result.scenario))
        with ResultStore(root / "merged") as dest:
            sources = [ResultStore(r, create=False) for r in shard_roots]
            try:
                start = time.perf_counter()
                stats = merge_stores(dest, sources)
                elapsed = time.perf_counter() - start
            finally:
                for source in sources:
                    source.close()
        if stats.copied != cells:
            raise RuntimeError(
                f"merged {stats.copied} cell(s), expected {cells}")
        ops = stats.copied + stats.skipped
        meta = {
            "cells": cells,
            "shards": shards,
            "copied": stats.copied,
            "skipped": stats.skipped,
        }
        return elapsed, ops, ops, meta
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _experiment_bench(module_name: str):
    """Wrap an experiment module (as driven by ``bench_<name>.py``)."""

    def run(quick: bool):
        import importlib

        module = importlib.import_module(f"repro.experiments.{module_name}")
        start = time.perf_counter()
        module.run(quick=True, seeds=1)
        elapsed = time.perf_counter() - start
        # Experiments do not expose a dispatched-event count; wall time is
        # the tracked quantity (ops=1 run).
        return elapsed, 0, 1, {"experiment": module_name, "quick_mode": True}

    return run


for _module in ("quiescence_time", "message_complexity", "scalability"):
    BENCH_SCENARIOS[f"exp_{_module}"] = BenchSpec(
        name=f"exp_{_module}",
        description=f"End-to-end experiment module {_module} (quick mode)",
        run=_experiment_bench(_module),
        default=False,
    )


# --------------------------------------------------------------------------- #
# running and comparing
# --------------------------------------------------------------------------- #
def run_benchmark(
    name: str,
    *,
    quick: bool = False,
    repeat: int = 1,
    calibration_mops: Optional[float] = None,
) -> BenchResult:
    """Run one registered scenario and return its normalized result.

    With ``repeat > 1`` the scenario runs several times and the fastest
    wall time wins (standard best-of-N to suppress scheduler noise).
    """
    spec = BENCH_SCENARIOS[name]
    if calibration_mops is None:
        calibration_mops = calibrate()
    best: Optional[tuple[float, int, int, dict[str, Any]]] = None
    rss_before = current_rss_kb()
    for _ in range(max(1, repeat)):
        measured = spec.run(quick)
        if best is None or measured[0] < best[0]:
            best = measured
    assert best is not None
    elapsed, events, ops, meta = best
    meta = dict(meta)
    meta["rss_delta_kb"] = max(0, current_rss_kb() - rss_before)
    elapsed = max(elapsed, 1e-9)
    return BenchResult(
        name=name,
        wall_time_s=elapsed,
        events=events,
        events_per_sec=events / elapsed,
        ops=ops,
        ops_per_sec=ops / elapsed,
        peak_rss_kb=peak_rss_kb(),
        calibration_mops=calibration_mops,
        quick=quick,
        meta=meta,
    )


def default_scenario_names() -> list[str]:
    """Scenarios run when none are named explicitly (CI's quick set)."""
    return [name for name, spec in BENCH_SCENARIOS.items() if spec.default]


def load_baseline(path: Path) -> dict[str, dict[str, Any]]:
    """Load a baseline file: mapping scenario name -> recorded result dict."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict) and "scenarios" in data:
        return dict(data["scenarios"])
    raise ValueError(f"unrecognised baseline layout in {path}")


def save_baseline(path: Path, results: list[BenchResult]) -> None:
    """Write *results* as the committed baseline."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scenarios": {r.name: r.as_dict() for r in results},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing one result against the committed baseline."""

    name: str
    baseline_score: float
    current_score: float
    ratio: float
    regressed: bool

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name:24s} baseline={self.baseline_score:10.1f} "
            f"current={self.current_score:10.1f} ratio={self.ratio:5.2f}x "
            f"[{verdict}]"
        )


def compare_to_baseline(
    results: list[BenchResult],
    baseline: dict[str, dict[str, Any]],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[Comparison]:
    """Compare results against a baseline; a scenario regresses when its
    normalized score falls below ``baseline * (1 - tolerance)``.

    Scenarios absent from the baseline are skipped (new benchmarks must not
    fail CI until a baseline for them is committed), as are entries whose
    recorded mode differs from the run's (a quick result against a
    full-size baseline compares different problem sizes — each mode only
    gates against a baseline captured in the same mode).  Wall-time-only
    scenarios (``events == 0``) compare inverse wall time instead.
    """
    comparisons: list[Comparison] = []
    for result in results:
        recorded = baseline.get(result.name)
        if recorded is None:
            continue
        if bool(recorded.get("quick", False)) != bool(result.quick):
            continue
        base_score = float(recorded.get("normalized_score", 0.0))
        cur_score = result.normalized_score
        if result.events == 0 or base_score == 0.0:
            base_wall = float(recorded.get("wall_time_s", 0.0))
            if base_wall <= 0:
                continue
            # Normalize inverse wall time by each side's calibration so the
            # fallback stays machine-comparable like the primary score.
            base_cal = float(recorded.get("calibration_mops", 0.0)) or 1.0
            cur_cal = result.calibration_mops or 1.0
            base_score = 1.0 / (base_wall * base_cal)
            cur_score = 1.0 / (result.wall_time_s * cur_cal)
        ratio = cur_score / base_score if base_score else float("inf")
        comparisons.append(
            Comparison(
                name=result.name,
                baseline_score=base_score,
                current_score=cur_score,
                ratio=ratio,
                regressed=cur_score < base_score * (1.0 - tolerance),
            )
        )
    return comparisons
