"""Benchmark + regeneration of E2 (Figure 1 — latency vs loss)."""

from conftest import run_experiment_once
from repro.experiments import latency_vs_loss


def test_e2_latency_vs_loss(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, latency_vs_loss.run, **quick_kwargs)
    combined = result.artifact("Figure 1 — combined series")
    latencies = combined.column("mean latency")
    assert all(value is not None and value > 0 for value in latencies)
    # Latency must not improve as the loss probability grows (per algorithm).
    for algorithm in ("algorithm1", "algorithm2"):
        series = [
            (row[1], row[2]) for row in combined.rows if row[0] == algorithm
        ]
        series.sort()
        assert series[0][1] <= series[-1][1] * 1.05
