"""Benchmark + regeneration of E3 (Figure 2 — cumulative sends over time)."""

from conftest import run_experiment_once
from repro.experiments import message_complexity


def test_e3_quiescence_curves(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, message_complexity.run, **quick_kwargs)
    figure = result.artifact("Figure 2 — cumulative sends over time")
    a1 = figure.column("algorithm1 cumulative sends")
    a2 = figure.column("algorithm2 cumulative sends")
    # Algorithm 1 keeps sending until the horizon; Algorithm 2 flattens.
    assert a1[-1] > 2 * a2[-1]
    assert a2[-1] == a2[len(a2) // 2]
    summary = result.artifact("Table — totals and quiescence")
    quiescent_runs = dict(zip(summary.column("algorithm"),
                              summary.column("quiescent runs")))
    assert quiescent_runs["algorithm2"] > 0
    assert quiescent_runs["algorithm1"] == 0
