"""Benchmark + regeneration of E9 (Table 4 — baseline comparison)."""

from conftest import run_experiment_once
from repro.experiments import baseline_comparison


def test_e9_baseline_comparison(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, baseline_comparison.run, **quick_kwargs)
    table = result.artifacts[0]
    coverage = dict(zip(
        table.column("protocol"),
        table.column("mean fraction of correct processes fully delivered"),
    ))
    uniform_ok = dict(zip(table.column("protocol"),
                          table.column("uniform agreement ok")))
    runs = table.column("runs")[0]
    # The URB protocols reach full coverage and keep uniform agreement.
    for protocol in ("algorithm1", "algorithm2", "identified_urb"):
        assert coverage[protocol] == 1.0
        assert uniform_ok[protocol] == runs
    # Best-effort broadcast cannot reach full coverage under heavy loss.
    assert coverage["best_effort"] < 1.0
