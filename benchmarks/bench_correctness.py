"""Benchmark + regeneration of E1 (Table 1 — correctness matrix)."""

from conftest import run_experiment_once
from repro.experiments import correctness


def test_e1_correctness_matrix(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, correctness.run, **quick_kwargs)
    table = result.artifacts[0]
    # Every configuration must satisfy all three URB properties in every run.
    runs = table.column("runs")
    assert table.column("validity ok") == runs
    assert table.column("agreement ok") == runs
    assert table.column("integrity ok") == runs
