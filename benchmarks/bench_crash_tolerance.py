"""Benchmark + regeneration of E8 (Table 3 — crash tolerance)."""

from conftest import run_experiment_once
from repro.experiments import crash_tolerance


def test_e8_crash_tolerance(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, crash_tolerance.run, **quick_kwargs)
    table = result.artifacts[0]
    for row in table.rows:
        algorithm, _, has_majority, runs, delivered = row[0], row[1], row[2], row[3], row[4]
        agreement_ok, integrity_ok = row[6], row[7]
        # Safety holds for every algorithm in every regime.
        assert agreement_ok == runs
        assert integrity_ok == runs
        if algorithm == "algorithm2":
            assert delivered == runs
        elif not has_majority:
            assert delivered == 0
