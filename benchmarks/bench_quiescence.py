"""Benchmark + regeneration of E4 (Figure 3 — quiescence time)."""

from conftest import run_experiment_once
from repro.experiments import quiescence_time


def test_e4_quiescence_time(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, quiescence_time.run, **quick_kwargs)
    loss_figure = result.artifact("Figure 3a — quiescence time vs loss probability")
    assert all(fraction == 1.0 for fraction in loss_figure.column("quiescent fraction"))
    delay_figure = result.artifact(
        "Figure 3b — quiescence time vs detection delay (1 crash)"
    )
    last_sends = delay_figure.column("mean last send time")
    # Larger detection delays cannot make quiescence happen earlier.
    assert last_sends == sorted(last_sends)
