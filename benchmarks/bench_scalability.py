"""Benchmark + regeneration of E5 (Figure 4 — scalability with n)."""

from conftest import run_experiment_once
from repro.experiments import scalability


def test_e5_scalability(benchmark, quick_kwargs):
    result = run_experiment_once(benchmark, scalability.run, **quick_kwargs)
    combined = result.artifact("Figure 4 — combined series")
    for algorithm in ("algorithm1", "algorithm2"):
        rows = [row for row in combined.rows if row[0] == algorithm]
        rows.sort(key=lambda row: row[1])
        sends = [row[3] for row in rows]
        # Traffic grows super-linearly with n (≈ n² per acknowledgement
        # round): the largest system must send clearly more than
        # proportionally to the smallest.
        n_small, n_large = rows[0][1], rows[-1][1]
        assert sends[-1] > sends[0] * (n_large / n_small) * 1.1
