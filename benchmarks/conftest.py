"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the corresponding experiment module in
*quick* mode (reduced grids, one seed) through ``pytest-benchmark`` so that
``pytest benchmarks/ --benchmark-only`` both measures the harness and
regenerates a (reduced) version of every table and figure.  Full-scale
reports are produced with ``python -m repro run all`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def run_experiment_once(benchmark, runner, **kwargs):
    """Run *runner* exactly once under the benchmark harness.

    Experiments are macro-benchmarks (hundreds of milliseconds to seconds),
    so a single round keeps the suite fast while still producing a timing.
    """
    return benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)


@pytest.fixture
def quick_kwargs():
    """Arguments that put every experiment into its fast configuration."""
    return {"quick": True, "seeds": 1}
