"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the corresponding experiment module in
*quick* mode (reduced grids, one seed) through ``pytest-benchmark`` so that
``pytest benchmarks/ --benchmark-only`` both measures the harness and
regenerates a (reduced) version of every table and figure.  Full-scale
reports are produced with ``python -m repro run all`` (see EXPERIMENTS.md).

When ``pytest-benchmark`` is not installed (minimal environments, some CI
jobs), the ``bench_*.py`` files are excluded from collection entirely so a
plain ``pytest -x -q`` stays green instead of erroring on the missing
``benchmark`` fixture.
"""

from __future__ import annotations

import pytest

try:
    import pytest_benchmark  # noqa: F401
except ImportError:
    HAVE_PYTEST_BENCHMARK = False
else:
    HAVE_PYTEST_BENCHMARK = True

#: Without the plugin, skip collecting the benchmark files (their tests all
#: require the ``benchmark`` fixture).  ``harness.py`` is importable either
#: way — it does not use pytest-benchmark.
collect_ignore_glob = [] if HAVE_PYTEST_BENCHMARK else ["bench_*.py"]


def run_experiment_once(benchmark, runner, **kwargs):
    """Run *runner* exactly once under the benchmark harness.

    Experiments are macro-benchmarks (hundreds of milliseconds to seconds),
    so a single round keeps the suite fast while still producing a timing.
    """
    return benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)


@pytest.fixture
def quick_kwargs():
    """Arguments that put every experiment into its fast configuration."""
    return {"quick": True, "seeds": 1}
