"""Shared pytest fixtures for the test suite."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# Make the sibling ``helpers`` module importable from every test package.
sys.path.insert(0, str(Path(__file__).parent))

from repro.experiments.config import Scenario  # noqa: E402
from repro.network.loss import LossSpec  # noqa: E402
from repro.workloads.generators import SingleBroadcast  # noqa: E402


@pytest.fixture
def rng() -> random.Random:
    """A deterministic ``random.Random`` for tests that need raw randomness."""
    return random.Random(12345)


@pytest.fixture
def fast_scenario_algorithm1() -> Scenario:
    """A small, fast Algorithm 1 scenario used by integration tests."""
    return Scenario(
        name="test-a1",
        algorithm="algorithm1",
        n_processes=5,
        loss=LossSpec.bernoulli(0.2),
        max_time=80.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
        workload=SingleBroadcast(sender=0, time=0.0),
        seed=1,
    )


@pytest.fixture
def fast_scenario_algorithm2() -> Scenario:
    """A small, fast Algorithm 2 scenario used by integration tests."""
    return Scenario(
        name="test-a2",
        algorithm="algorithm2",
        n_processes=5,
        loss=LossSpec.bernoulli(0.2),
        max_time=120.0,
        stop_when_quiescent=True,
        drain_grace_period=4.0,
        workload=SingleBroadcast(sender=0, time=0.0),
        seed=1,
    )
