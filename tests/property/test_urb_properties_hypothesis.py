"""Property-based end-to-end tests: the URB properties hold on full simulated
runs across randomly drawn configurations.

Safety (Uniform Agreement, Uniform Integrity) must hold on *every* run of
both algorithms regardless of the horizon.  Liveness (Validity, full
delivery) is checked only for configurations where the algorithm's
assumptions hold and the horizon is generous.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.network.loss import LossSpec
from repro.workloads.generators import SingleBroadcast, UniformStream

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def algorithm1_scenarios(draw):
    n = draw(st.integers(3, 7))
    max_crashes = (n - 1) // 2  # keep the correct-majority assumption
    n_crashes = draw(st.integers(0, max_crashes))
    crash_times = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=n_crashes,
                 max_size=n_crashes)
    )
    crashes = {n - 1 - i: t for i, t in enumerate(crash_times)}
    loss = draw(st.floats(0.0, 0.5, allow_nan=False))
    seed = draw(st.integers(0, 10_000))
    return Scenario(
        name="prop-a1",
        algorithm="algorithm1",
        n_processes=n,
        crashes=crashes,
        loss=LossSpec.bernoulli(loss) if loss > 0 else LossSpec.none(),
        workload=SingleBroadcast(sender=0, time=0.0),
        max_time=120.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=1.0,
        seed=seed,
    )


@st.composite
def algorithm2_scenarios(draw):
    n = draw(st.integers(3, 6))
    n_crashes = draw(st.integers(0, n - 1))  # any number of crashes
    crash_times = draw(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=n_crashes,
                 max_size=n_crashes)
    )
    crashes = {n - 1 - i: t for i, t in enumerate(crash_times)}
    loss = draw(st.floats(0.0, 0.5, allow_nan=False))
    seed = draw(st.integers(0, 10_000))
    learn_delay = draw(st.floats(0.0, 3.0, allow_nan=False))
    return Scenario(
        name="prop-a2",
        algorithm="algorithm2",
        n_processes=n,
        crashes=crashes,
        loss=LossSpec.bernoulli(loss) if loss > 0 else LossSpec.none(),
        workload=SingleBroadcast(sender=0, time=0.0),
        max_time=150.0,
        stop_when_quiescent=True,
        drain_grace_period=3.0,
        fd_learn_delay=learn_delay,
        seed=seed,
    )


class TestAlgorithm1Properties:
    @given(scenario=algorithm1_scenarios())
    @settings(**COMMON_SETTINGS)
    def test_urb_properties_hold_with_correct_majority(self, scenario):
        result = run_scenario(scenario)
        verdict = result.verdict
        assert verdict.uniform_integrity.holds, verdict.violations()
        assert verdict.uniform_agreement.holds, verdict.violations()
        # With a correct majority and a generous horizon, validity holds too.
        assert verdict.validity.holds, verdict.violations()

    @given(scenario=algorithm1_scenarios())
    @settings(**COMMON_SETTINGS)
    def test_every_correct_process_delivers(self, scenario):
        result = run_scenario(scenario)
        for index in result.simulation.correct_indices():
            assert result.simulation.deliveries_of(index) == ["m0"]

    @given(scenario=algorithm1_scenarios())
    @settings(**COMMON_SETTINGS)
    def test_anonymity_audit_always_passes(self, scenario):
        result = run_scenario(scenario)
        assert result.anonymity.passed


class TestAlgorithm2Properties:
    @given(scenario=algorithm2_scenarios())
    @settings(**COMMON_SETTINGS)
    def test_urb_properties_hold_with_any_crash_count(self, scenario):
        result = run_scenario(scenario)
        verdict = result.verdict
        assert verdict.uniform_integrity.holds, verdict.violations()
        assert verdict.uniform_agreement.holds, verdict.violations()
        assert verdict.validity.holds, verdict.violations()

    @given(scenario=algorithm2_scenarios())
    @settings(**COMMON_SETTINGS)
    def test_every_correct_process_delivers_and_quiesces(self, scenario):
        result = run_scenario(scenario)
        for index in result.simulation.correct_indices():
            assert "m0" in result.simulation.deliveries_of(index)
        assert result.quiescence.quiescent

    @given(scenario=algorithm2_scenarios(),
           n_messages=st.integers(1, 3))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_multi_message_workloads(self, scenario, n_messages):
        scenario = scenario.with_(
            workload=UniformStream(n_messages, senders=(0,), interval=2.0),
            max_time=200.0,
        )
        result = run_scenario(scenario)
        assert result.verdict.uniform_agreement.holds
        assert result.verdict.uniform_integrity.holds
        expected = {f"m{k}" for k in range(n_messages)}
        for index in result.simulation.correct_indices():
            assert expected <= set(result.simulation.deliveries_of(index))


class TestDeterminismProperty:
    @given(scenario=algorithm2_scenarios())
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_runs_are_reproducible(self, scenario):
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.metrics.total_sends == b.metrics.total_sends
        assert a.metrics.deliveries == b.metrics.deliveries
        assert a.quiescence.last_send_time == b.quiescence.last_send_time
