"""Property-based tests of the failure detectors' formal properties.

For randomly drawn failure patterns and observation times, the default
(prescient, ``CORRECT_ONLY``) oracles must satisfy the paper's definitions:

* AΘ-completeness / AP*-completeness — eventually the view of every correct
  process contains a pair for every correct process with
  ``number = |S(label) ∩ Correct|``;
* AΘ-accuracy — at every time, every output pair ``(label, number)`` is such
  that every ``number``-sized subset of the knower set ``S(label)`` contains
  at least one correct process;
* AP*-accuracy — crashed processes' pairs are eventually permanently removed.

The detection-based (``ALL_PROCESSES``) oracle must satisfy accuracy whenever
a majority of processes is correct (the regime it is sound for).
"""

import itertools
import random

from hypothesis import assume, given, settings, strategies as st

from repro.failure_detectors.apstar import APStarOracle
from repro.failure_detectors.atheta import AThetaOracle
from repro.failure_detectors.oracle import GroundTruthOracle
from repro.failure_detectors.policies import DisseminationPolicy
from repro.simulation.faults import CrashSchedule


@st.composite
def failure_patterns(draw, min_n=2, max_n=6, allow_minority_correct=True):
    n = draw(st.integers(min_n, max_n))
    max_crashes = n - 1 if allow_minority_correct else (n - 1) // 2
    n_crashes = draw(st.integers(0, max_crashes))
    victims = draw(
        st.lists(st.integers(0, n - 1), min_size=n_crashes, max_size=n_crashes,
                 unique=True)
    )
    times = draw(
        st.lists(st.floats(0.0, 30.0, allow_nan=False), min_size=n_crashes,
                 max_size=n_crashes)
    )
    return n, dict(zip(victims, times))


def build(n, crashes, policy, seed, detection_delay=2.0, learn_delay=0.0):
    schedule = CrashSchedule.crash_at(n, crashes)
    ground = GroundTruthOracle(schedule, rng=random.Random(seed))
    atheta = AThetaOracle(ground, policy=policy, detection_delay=detection_delay,
                          learn_delay=learn_delay, rng=random.Random(seed + 1))
    apstar = APStarOracle(ground, policy=policy, detection_delay=detection_delay,
                          learn_delay=learn_delay, rng=random.Random(seed + 2))
    return ground, atheta, apstar


def converged_time(crashes, detection_delay, learn_delay):
    return max([0.0] + [t for t in crashes.values()]) + detection_delay + learn_delay + 1.0


class TestPrescientOracleProperties:
    @given(pattern=failure_patterns(), seed=st.integers(0, 1000),
           learn_delay=st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_completeness(self, pattern, seed, learn_delay):
        n, crashes = pattern
        ground, atheta, apstar = build(
            n, crashes, DisseminationPolicy.CORRECT_ONLY, seed,
            learn_delay=learn_delay,
        )
        horizon = converged_time(crashes, 2.0, learn_delay)
        expected_labels = ground.labels_of_correct()
        for viewer in ground.correct_indices():
            for oracle in (atheta, apstar):
                view = oracle.view(viewer, horizon)
                assert view.labels() == expected_labels
                for pair in view:
                    knowers = oracle.knower_set(pair.label, horizon)
                    assert pair.number == len(knowers & set(ground.correct_indices()))

    @given(pattern=failure_patterns(), seed=st.integers(0, 1000),
           probe=st.floats(0.0, 60.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_accuracy_at_every_time(self, pattern, seed, probe):
        n, crashes = pattern
        ground, atheta, _ = build(n, crashes, DisseminationPolicy.CORRECT_ONLY, seed)
        correct = set(ground.correct_indices())
        for viewer in range(n):
            view = atheta.view(viewer, probe)
            for pair in view:
                knowers = atheta.knower_set(pair.label, horizon=max(probe, 60.0))
                # Every `number`-sized subset of the knowers must contain a
                # correct process; equivalently the number of faulty knowers
                # must be strictly smaller than `number`.
                faulty_knowers = len(knowers - correct)
                assert faulty_knowers < pair.number

    @given(pattern=failure_patterns(), seed=st.integers(0, 1000))
    @settings(max_examples=100, deadline=None)
    def test_apstar_accuracy_removes_crashed(self, pattern, seed):
        n, crashes = pattern
        ground, _, apstar = build(n, crashes, DisseminationPolicy.CORRECT_ONLY, seed)
        horizon = converged_time(crashes, 2.0, 0.0)
        for viewer in ground.correct_indices():
            view = apstar.view(viewer, horizon)
            for faulty in ground.faulty_indices():
                assert ground.label_of(faulty) not in view

    @given(pattern=failure_patterns(), seed=st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_eventual_pair_count_equals_correct_count(self, pattern, seed):
        n, crashes = pattern
        ground, _, apstar = build(n, crashes, DisseminationPolicy.CORRECT_ONLY, seed)
        horizon = converged_time(crashes, 2.0, 0.0)
        viewer = ground.correct_indices()[0]
        assert len(apstar.view(viewer, horizon)) == ground.n_correct


class TestDetectionOracleProperties:
    @given(pattern=failure_patterns(allow_minority_correct=False),
           seed=st.integers(0, 1000),
           probe=st.floats(0.0, 60.0, allow_nan=False),
           detection_delay=st.floats(0.0, 10.0, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_accuracy_holds_with_correct_majority(self, pattern, seed, probe,
                                                  detection_delay):
        n, crashes = pattern
        assume(len(crashes) < n / 2)
        ground, atheta, _ = build(
            n, crashes, DisseminationPolicy.ALL_PROCESSES, seed,
            detection_delay=detection_delay,
        )
        correct = set(ground.correct_indices())
        for viewer in range(n):
            for pair in atheta.view(viewer, probe):
                knowers = atheta.knower_set(pair.label, horizon=max(probe, 80.0))
                faulty_knowers = len(knowers - correct)
                assert faulty_knowers < pair.number

    @given(pattern=failure_patterns(), seed=st.integers(0, 1000),
           detection_delay=st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_completeness_with_any_pattern(self, pattern, seed, detection_delay):
        n, crashes = pattern
        ground, atheta, apstar = build(
            n, crashes, DisseminationPolicy.ALL_PROCESSES, seed,
            detection_delay=detection_delay,
        )
        horizon = converged_time(crashes, detection_delay, 0.0)
        for viewer in ground.correct_indices():
            for oracle in (atheta, apstar):
                view = oracle.view(viewer, horizon)
                assert view.labels() == ground.labels_of_correct()
                assert all(pair.number == ground.n_correct for pair in view)

    @given(pattern=failure_patterns(), seed=st.integers(0, 1000),
           probes=st.lists(st.floats(0.0, 80.0, allow_nan=False), min_size=2,
                           max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_numbers_are_non_increasing_over_time(self, pattern, seed, probes):
        """The detection-based number (n minus detected crashes) never grows."""
        n, crashes = pattern
        _, atheta, _ = build(n, crashes, DisseminationPolicy.ALL_PROCESSES, seed)
        viewer = 0
        probes = sorted(probes)
        numbers = []
        for probe in probes:
            view = atheta.view(viewer, probe)
            if view:
                numbers.append(max(pair.number for pair in view))
        assert all(a >= b for a, b in zip(numbers, numbers[1:]))


class TestAccuracySubsetSemantics:
    @given(pattern=failure_patterns(min_n=2, max_n=5), seed=st.integers(0, 500))
    @settings(max_examples=60, deadline=None)
    def test_exhaustive_subset_check_small_systems(self, pattern, seed):
        """For small systems, check the accuracy property literally: every
        subset of S(label) of size `number` intersects Correct."""
        n, crashes = pattern
        ground, atheta, _ = build(n, crashes, DisseminationPolicy.CORRECT_ONLY, seed)
        correct = set(ground.correct_indices())
        horizon = converged_time(crashes, 2.0, 0.0)
        viewer = ground.correct_indices()[0]
        for pair in atheta.view(viewer, horizon):
            knowers = atheta.knower_set(pair.label, horizon)
            for subset in itertools.combinations(knowers, min(pair.number, len(knowers))):
                if len(subset) == pair.number:
                    assert set(subset) & correct
