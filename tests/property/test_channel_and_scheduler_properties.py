"""Property-based tests for the channel fairness guarantee and the event
queue ordering."""

import random

from hypothesis import given, settings, strategies as st

from repro.network.channel import LossyChannel
from repro.network.delay import FixedDelay
from repro.network.loss import BernoulliLoss, DropFirstK, GilbertElliottLoss
from repro.simulation.events import EventKind
from repro.simulation.scheduler import EventQueue


def make_loss_model(kind: str, rng: random.Random):
    if kind == "bernoulli":
        return BernoulliLoss(0.9, rng)
    if kind == "always":
        return BernoulliLoss(1.0, rng)
    if kind == "bursty":
        return GilbertElliottLoss(rng, p_good_to_bad=0.5, p_bad_to_good=0.1,
                                  loss_good=0.5, loss_bad=1.0)
    return DropFirstK(7)


class TestFairnessGuardProperty:
    @given(
        kind=st.sampled_from(["bernoulli", "always", "bursty", "dropk"]),
        bound=st.integers(1, 10),
        attempts=st.integers(1, 120),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=150, deadline=None)
    def test_never_more_than_bound_consecutive_drops(self, kind, bound, attempts, seed):
        """With the fairness guard at ``bound``, the channel can never drop
        more than ``bound`` consecutive copies of the same payload — the
        finite-run version of the Fairness property."""
        channel = LossyChannel(
            0, 1, make_loss_model(kind, random.Random(seed)), FixedDelay(0.1),
            fairness_bound=bound,
        )
        consecutive = 0
        for attempt in range(attempts):
            delivered = channel.transmit("key", float(attempt)) is not None
            if delivered:
                consecutive = 0
            else:
                consecutive += 1
            assert consecutive <= bound

    @given(
        bound=st.integers(1, 5),
        n_messages=st.integers(1, 5),
        attempts_per_message=st.integers(1, 30),
        seed=st.integers(0, 2 ** 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_guard_applies_per_payload(self, bound, n_messages,
                                       attempts_per_message, seed):
        channel = LossyChannel(
            0, 1, BernoulliLoss(1.0, random.Random(seed)), FixedDelay(0.1),
            fairness_bound=bound,
        )
        consecutive = {m: 0 for m in range(n_messages)}
        for attempt in range(attempts_per_message):
            for m in range(n_messages):
                delivered = channel.transmit(m, float(attempt)) is not None
                consecutive[m] = 0 if delivered else consecutive[m] + 1
                assert consecutive[m] <= bound

    @given(probability=st.floats(0.0, 0.95), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=60, deadline=None)
    def test_retransmission_eventually_succeeds_without_guard(self, probability, seed):
        """Even without the guard, Bernoulli(p<1) loss lets some copy through
        within a generous retransmission budget (the probabilistic reading of
        fairness; 400 attempts makes failure probability < 1e-8 at p=0.95)."""
        channel = LossyChannel(
            0, 1, BernoulliLoss(probability, random.Random(seed)), FixedDelay(0.1),
            fairness_bound=None,
        )
        assert any(
            channel.transmit("key", float(t)) is not None for t in range(400)
        )

    @given(seed=st.integers(0, 2 ** 16), attempts=st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_channel_never_duplicates(self, seed, attempts):
        """Uniform Integrity, channel side: one transmit yields at most one
        delivery (trivially true by construction, asserted via stats)."""
        channel = LossyChannel(
            0, 1, BernoulliLoss(0.5, random.Random(seed)), FixedDelay(0.1),
        )
        for t in range(attempts):
            channel.transmit("key", float(t))
        assert channel.stats.delivered + channel.stats.dropped == channel.stats.attempts
        assert channel.stats.attempts == attempts


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_pops_are_sorted_and_stable(self, times):
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.schedule(time, EventKind.TICK, target=index)
        popped = [queue.pop() for _ in range(len(times))]
        # Non-decreasing times.
        assert all(a.time <= b.time for a, b in zip(popped, popped[1:]))
        # Stable for equal times: the scheduler-assigned sequence numbers of
        # equal-time events must appear in increasing order.
        for a, b in zip(popped, popped[1:]):
            if a.time == b.time:
                assert a.seq < b.seq

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_conservation(self, times):
        """Everything pushed is eventually popped, exactly once."""
        queue = EventQueue()
        for index, time in enumerate(times):
            queue.schedule(time, EventKind.TICK, target=index)
        targets = sorted(queue.pop().target for _ in range(len(times)))
        assert targets == list(range(len(times)))
        assert len(queue) == 0
        assert queue.pushed_count == queue.popped_count == len(times)
