"""Property-based tests (hypothesis) for the core data structures:
Algorithm 2's label bookkeeping, the ordered message set and tag generation."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.messages import TaggedMessage
from repro.core.state import Algorithm2State, MessageSet
from repro.core.tags import TagGenerator
from repro.failure_detectors.labels import Label

# Small universes keep shrinking effective while still covering the
# interesting interleavings.
LABELS = [Label(i) for i in range(1, 6)]
ACK_TAGS = list(range(1, 6))
MESSAGE = TaggedMessage("m", 1)

ack_event = st.tuples(
    st.sampled_from(ACK_TAGS),
    st.frozensets(st.sampled_from(LABELS), max_size=len(LABELS)),
)


class TestAlgorithm2StateProperties:
    @given(st.lists(ack_event, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_counter_always_matches_recount(self, events):
        """label_counter[(m,tag), label] must always equal the number of
        recorded ack entries currently carrying that label."""
        state = Algorithm2State()
        for ack_tag, labels in events:
            state.record_labeled_ack(MESSAGE, ack_tag, labels)
            assert state.check_counter_invariant(MESSAGE)

    @given(st.lists(ack_event, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_counts_bounded_by_distinct_ackers(self, events):
        state = Algorithm2State()
        for ack_tag, labels in events:
            state.record_labeled_ack(MESSAGE, ack_tag, labels)
        distinct = state.distinct_ack_count(MESSAGE)
        for label in LABELS:
            assert 0 <= state.label_count(MESSAGE, label) <= distinct

    @given(st.lists(ack_event, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_final_state_depends_only_on_last_labels_per_acker(self, events):
        """Replaying only each acker's *last* ACK yields the same counters —
        the reconciliation of repeated ACKs is history-independent."""
        full = Algorithm2State()
        for ack_tag, labels in events:
            full.record_labeled_ack(MESSAGE, ack_tag, labels)
        last_only = Algorithm2State()
        last_by_acker = {}
        for ack_tag, labels in events:
            last_by_acker[ack_tag] = labels
        for ack_tag, labels in last_by_acker.items():
            last_only.record_labeled_ack(MESSAGE, ack_tag, labels)
        assert full.counter_for(MESSAGE) == last_only.counter_for(MESSAGE)
        assert full.labels_union(MESSAGE) == last_only.labels_union(MESSAGE)

    @given(st.lists(ack_event, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_union_is_union_of_current_records(self, events):
        state = Algorithm2State()
        for ack_tag, labels in events:
            state.record_labeled_ack(MESSAGE, ack_tag, labels)
        expected = set()
        for record in state.ack_records.get(MESSAGE, {}).values():
            expected |= record.labels
        assert state.labels_union(MESSAGE) == frozenset(expected)


class TestMessageSetProperties:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 9)), max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_behaves_like_ordered_set(self, operations):
        """MessageSet must behave exactly like a dict-backed model: same
        membership and same insertion order at every step."""
        ms = MessageSet()
        model: dict[TaggedMessage, None] = {}
        for is_add, key in operations:
            message = TaggedMessage("m", key)
            if is_add:
                assert ms.add(message) == (message not in model)
                model.setdefault(message, None)
            else:
                assert ms.discard(message) == (message in model)
                model.pop(message, None)
            assert ms.as_list() == list(model)
            assert len(ms) == len(model)


class TestTagProperties:
    @given(st.integers(0, 2 ** 32 - 1), st.integers(1, 300))
    @settings(max_examples=60, deadline=None)
    def test_tags_always_unique_within_generator(self, seed, count):
        generator = TagGenerator(random.Random(seed))
        tags = [generator.next() for _ in range(count)]
        assert len(set(tags)) == count

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_generators_with_same_seed_agree(self, seed):
        a = TagGenerator(random.Random(seed))
        b = TagGenerator(random.Random(seed))
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    @given(st.integers(0, 2 ** 16), st.integers(0, 2 ** 16))
    @settings(max_examples=100, deadline=None)
    def test_cross_process_tags_distinct_with_distinct_streams(self, seed_a, seed_b):
        """Distinct processes draw from distinct substreams; their tag sets
        must not collide for realistic counts (64-bit tags)."""
        if seed_a == seed_b:
            return
        a = TagGenerator(random.Random(("proc", seed_a).__hash__()))
        b = TagGenerator(random.Random(("proc", seed_b).__hash__()))
        tags_a = {a.next() for _ in range(50)}
        tags_b = {b.next() for _ in range(50)}
        assert not tags_a & tags_b
