"""CLI coverage for the ``campaign`` verb family, ``replay`` and the
``sweep --progress`` satellite."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_args(store, extra=()):
    return [
        "campaign", "run", "--store", str(store), "--name", "cli-camp",
        "--algorithm", "algorithm2", "--n", "4", "--values", "0.0,0.2",
        "--seeds", "2", "--max-time", "60",
        *extra,
    ]


@pytest.fixture()
def populated_store(tmp_path):
    store = tmp_path / "store"
    assert main(run_args(store)) == 0
    return store


class TestCampaignRunCli:
    def test_run_then_resume_reports_zero_executed(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main(run_args(store)) == 0
        first = capsys.readouterr().out
        assert "0 cached, 4 executed" in first
        assert "configuration" in first  # the aggregate table rendered

        assert main(run_args(store, ["--resume"])) == 0
        second = capsys.readouterr().out
        assert "4 cached, 0 executed" in second
        # The aggregate tables of the fresh and resumed runs are identical.
        table = lambda text: text[text.index("configuration"):]  # noqa: E731
        assert table(first) == table(second)

    def test_reusing_a_name_without_resume_fails(self, capsys,
                                                 populated_store):
        assert main(run_args(populated_store)) == 2
        assert "resume" in capsys.readouterr().err

    def test_progress_prints_cell_lines(self, capsys, tmp_path):
        assert main(run_args(tmp_path / "store", ["--progress"])) == 0
        err = capsys.readouterr().err
        assert "1/4 cells completed" in err
        assert "4/4 cells completed" in err


class TestCampaignStatusQueryExportGc:
    def test_status_lists_and_details(self, capsys, populated_store):
        assert main(["campaign", "status", "--store",
                     str(populated_store)]) == 0
        listing = capsys.readouterr().out
        assert "cli-camp" in listing and "complete" in listing
        assert main(["campaign", "status", "--store", str(populated_store),
                     "cli-camp"]) == 0
        detail = capsys.readouterr().out
        assert "4/4 cells computed" in detail
        assert "loss=0.2" in detail

    def test_status_on_missing_store_fails_without_creating_it(
            self, capsys, tmp_path):
        missing = tmp_path / "nowhere"
        assert main(["campaign", "status", "--store", str(missing)]) == 2
        assert "no result store" in capsys.readouterr().err
        assert not missing.exists()

    def test_counterexamples_rejects_result_filters(self, capsys,
                                                    populated_store):
        assert main(["campaign", "query", "--store", str(populated_store),
                     "--counterexamples", "--algorithm", "algorithm2"]) == 2
        assert "--counterexamples" in capsys.readouterr().err

    def test_store_path_that_is_a_file_fails_cleanly(self, capsys, tmp_path):
        target = tmp_path / "storefile"
        target.write_text("x")
        assert main(run_args(target)) == 2
        assert "cannot use" in capsys.readouterr().err

    def test_query_filters_rows(self, capsys, populated_store):
        assert main(["campaign", "query", "--store", str(populated_store),
                     "--loss", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "2 row(s)" in output
        assert main(["campaign", "query", "--store", str(populated_store),
                     "--campaign", "cli-camp", "--group", "loss=0.0"]) == 0
        output = capsys.readouterr().out
        assert "2 row(s)" in output
        assert main(["campaign", "query", "--store", str(populated_store),
                     "--violations-only"]) == 0
        assert "0 row(s)" in capsys.readouterr().out

    def test_export_json_and_csv(self, capsys, populated_store, tmp_path):
        json_out = tmp_path / "campaign.json"
        assert main(["campaign", "export", "--store", str(populated_store),
                     "--campaign", "cli-camp", "--output",
                     str(json_out)]) == 0
        data = json.loads(json_out.read_text())
        assert data["experiment_id"] == "campaign:cli-camp"
        assert data["artifacts"][0]["headers"][0] == "configuration"

        csv_out = tmp_path / "campaign.csv"
        assert main(["campaign", "export", "--store", str(populated_store),
                     "--campaign", "cli-camp", "--output", str(csv_out)]) == 0
        assert csv_out.read_text().startswith("configuration,")

    def test_export_requires_exactly_one_target(self, capsys,
                                                populated_store, tmp_path):
        assert main(["campaign", "export", "--store", str(populated_store),
                     "--output", str(tmp_path / "x.json")]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_gc_reports_and_drop_campaign_frees_cells(self, capsys,
                                                      populated_store):
        assert main(["campaign", "gc", "--store", str(populated_store)]) == 0
        assert "removed 0 orphan" in capsys.readouterr().out
        assert main(["campaign", "gc", "--store", str(populated_store),
                     "--drop-campaign", "cli-camp",
                     "--drop-unreferenced"]) == 0
        output = capsys.readouterr().out
        assert "dropped campaign 'cli-camp'" in output
        assert "dropped 4 unreferenced result(s)" in output


class TestDistributedCli:
    def test_serve_with_cli_worker_merges_and_reports(self, capsys, tmp_path):
        import threading

        workdir = tmp_path / "job"
        store = tmp_path / "merged"
        worker = threading.Thread(target=main, args=([
            "campaign", "work", "--workdir", str(workdir),
            "--worker-id", "cli-w0", "--poll-interval", "0.05",
            "--wait-for-job", "30",
        ],))
        worker.start()
        try:
            code = main([
                "campaign", "serve", "--store", str(store),
                "--workdir", str(workdir), "--name", "cli-dist",
                "--algorithm", "algorithm2", "--n", "4",
                "--values", "0.0,0.2", "--seeds", "2", "--max-time", "60",
                "--lease-timeout", "30", "--timeout", "120",
                "--poll-interval", "0.1",
            ])
        finally:
            worker.join(timeout=120)
        output = capsys.readouterr().out
        assert code == 0
        assert "4/4 cells completed" in output
        assert "4 cell(s) copied" in output
        assert "configuration" in output  # the aggregate table rendered
        assert "worker cli-w0: 4 cell(s) executed" in output

        # The merged store and the lease table agree in `status --workdir`.
        assert main(["campaign", "status", "--store", str(store),
                     "cli-dist", "--workdir", str(workdir)]) == 0
        status = capsys.readouterr().out
        assert "4/4 cells computed" in status
        assert "0 leased, 0 pending" in status

        # A plan against the merged store sees every cell as stored.
        assert main(["campaign", "plan", "--store", str(store),
                     "--algorithm", "algorithm2", "--n", "4",
                     "--values", "0.0,0.2", "--seeds", "2",
                     "--max-time", "60"]) == 0
        plan = capsys.readouterr().out
        assert "4 already stored" in plan
        assert "no workers needed" in plan

    def test_work_without_a_job_fails(self, capsys, tmp_path):
        assert main(["campaign", "work", "--workdir",
                     str(tmp_path / "absent")]) == 2
        assert "no distributed job" in capsys.readouterr().err

    def test_plan_without_store_uses_assumed_costs(self, capsys):
        assert main(["campaign", "plan", "--algorithm", "algorithm2",
                     "--n", "4", "--values", "0.0,0.2", "--seeds", "2",
                     "--max-time", "60"]) == 0
        output = capsys.readouterr().out
        assert "assumed" in output
        assert "suggested workers" in output


class TestStoreMergeCli:
    def test_merge_unions_stores_and_is_idempotent(self, capsys, tmp_path):
        a, b, dest = tmp_path / "a", tmp_path / "b", tmp_path / "dest"
        assert main(["campaign", "run", "--store", str(a), "--name", "ca",
                     "--n", "4", "--values", "0.0", "--seeds", "2",
                     "--max-time", "60"]) == 0
        assert main(["campaign", "run", "--store", str(b), "--name", "cb",
                     "--n", "4", "--values", "0.2", "--seeds", "2",
                     "--max-time", "60"]) == 0
        capsys.readouterr()
        assert main(["store", "merge", "--into", str(dest),
                     str(a), str(b)]) == 0
        assert "4 cell(s) copied" in capsys.readouterr().out
        assert main(["store", "merge", "--into", str(dest),
                     str(a), str(b)]) == 0
        assert "0 cell(s) copied, 4 already present" in \
            capsys.readouterr().out
        # Both campaign manifests travelled with their cells.
        assert main(["campaign", "status", "--store", str(dest)]) == 0
        listing = capsys.readouterr().out
        assert "ca" in listing and "cb" in listing

    def test_merge_missing_source_fails(self, capsys, tmp_path):
        assert main(["store", "merge", "--into", str(tmp_path / "dest"),
                     str(tmp_path / "absent")]) == 2
        assert "no result store" in capsys.readouterr().err


class TestReplayCli:
    @pytest.fixture()
    def artifact(self, tmp_path):
        artifacts = tmp_path / "artifacts"
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "25", "--n", "4",
            "--max-time", "60", "--artifacts", str(artifacts),
        ])
        assert code == 1  # violations found
        written = sorted(artifacts.glob("counterexample_*.json"))
        assert written
        return written[0]

    def test_replay_reproduces_the_recorded_violation(self, capsys, artifact):
        assert main(["replay", str(artifact)]) == 0
        output = capsys.readouterr().out
        assert "replayed shrunk trace" in output
        assert "violation reproduced" in output

    def test_replay_full_trace(self, capsys, artifact):
        assert main(["replay", str(artifact), "--full"]) == 0
        output = capsys.readouterr().out
        assert "replayed full trace" in output
        assert "violation reproduced" in output

    def test_missing_artifact_is_an_error(self, capsys, tmp_path):
        assert main(["replay", str(tmp_path / "absent.json")]) == 2
        assert "no such artifact" in capsys.readouterr().err

    def test_tampered_artifact_detects_divergence(self, capsys, artifact,
                                                  tmp_path):
        data = json.loads(artifact.read_text())
        # Claim a violation set the replay cannot reproduce.
        data["signature"] = ["Uniform Integrity"]
        tampered = tmp_path / "tampered.json"
        tampered.write_text(json.dumps(data))
        assert main(["replay", str(tampered)]) == 1
        assert "replay diverged" in capsys.readouterr().err


class TestExploreStoreIntegration:
    def test_explore_persists_counterexamples_into_the_store(
            self, capsys, tmp_path):
        store = tmp_path / "store"
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "25", "--n", "4",
            "--max-time", "60", "--no-shrink", "--store", str(store),
        ])
        assert code == 1
        capsys.readouterr()
        assert main(["campaign", "query", "--store", str(store),
                     "--counterexamples"]) == 0
        output = capsys.readouterr().out
        assert "algorithm1_noretx" in output
        assert "random_walk" in output

    def test_stored_counterexample_exports_and_replays(self, capsys,
                                                       tmp_path):
        store = tmp_path / "store"
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "25", "--n", "4",
            "--max-time", "60", "--store", str(store),
        ])
        assert code == 1
        capsys.readouterr()
        from repro.campaigns import ResultStore

        with ResultStore(store, create=False) as handle:
            schedule_hash = handle.counterexamples()[0].schedule_hash
        exported = tmp_path / "exported.json"
        assert main(["campaign", "export", "--store", str(store),
                     "--counterexample", schedule_hash,
                     "--output", str(exported)]) == 0
        capsys.readouterr()
        assert main(["replay", str(exported)]) == 0
        assert "violation reproduced" in capsys.readouterr().out


class TestSweepProgressCli:
    def test_sweep_progress_prints_completed_totals(self, capsys):
        code = main([
            "sweep", "--algorithm", "algorithm2", "--n", "4",
            "--values", "0.0,0.2", "--seeds", "1", "--max-time", "60",
            "--progress",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "1/2 runs completed" in captured.err
        assert "2/2 runs completed" in captured.err
