"""CLI coverage for the ``explore`` subcommand and the strategies listing."""

from __future__ import annotations

import json

from repro.cli import main


class TestComponentsListsStrategies:
    def test_components_lists_exploration_strategies(self, capsys):
        assert main(["components"]) == 0
        output = capsys.readouterr().out
        assert "Exploration strategies" in output
        for name in ("random_walk", "pct", "delay_bound", "crash_points"):
            assert name in output


class TestExploreCommand:
    def test_clean_protocol_exits_zero(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1",
            "--strategy", "random_walk", "--budget", "6", "--n", "4",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "explore(random_walk)" in output
        assert "Validity: OK" in output

    def test_broken_protocol_exits_nonzero_and_writes_artifacts(
            self, capsys, tmp_path):
        artifacts = tmp_path / "artifacts"
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "25", "--n", "4",
            "--max-time", "60", "--artifacts", str(artifacts),
        ])
        output = capsys.readouterr().out
        assert code == 1
        assert "COUNTEREXAMPLE" in output
        written = list(artifacts.glob("counterexample_*.json"))
        assert written
        payload = json.loads(written[0].read_text())
        assert payload["scenario"]["algorithm"] == "algorithm1_noretx"
        assert payload["decisions"]

    def test_expect_violation_inverts_exit_code(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "25", "--n", "4",
            "--max-time", "60", "--expect-violation",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "expected violation found" in output

    def test_expect_violation_without_shrink_does_not_claim_replay(
            self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "25", "--n", "4",
            "--max-time", "60", "--expect-violation", "--no-shrink",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "shrinking disabled, replay not verified" in output
        assert "replays to the same violation" not in output

    def test_expect_violation_fails_when_clean(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1",
            "--strategy", "pct", "--budget", "4", "--n", "3",
            "--expect-violation",
        ])
        assert code == 1

    def test_strategy_options_forwarded_via_metadata(self, capsys):
        # Forcing the drop probability to zero makes even the broken
        # variant pass: every copy is delivered, so a majority of acks
        # always arrives without retransmission.
        code = main([
            "explore", "--algorithm", "algorithm1_noretx",
            "--strategy", "random_walk", "--budget", "6", "--n", "4",
            "--max-time", "60",
            "--option", "explore_drop_probability=0.0",
            "--option", "explore_crash_probability=0.0",
        ])
        assert code == 0

    def test_loss_rejected_for_decision_driven_strategies(self, capsys):
        # random_walk decides every copy's fate itself; a baseline loss
        # would silently change nothing, so the CLI refuses it.
        code = main([
            "explore", "--algorithm", "algorithm1",
            "--strategy", "random_walk", "--budget", "4", "--loss", "0.3",
        ])
        assert code == 2
        assert "explore_drop_probability" in capsys.readouterr().err

    def test_loss_accepted_for_channel_delegating_strategies(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1",
            "--strategy", "crash_points", "--budget", "6", "--n", "3",
            "--loss", "0.1", "--option", "explore_crash_steps=2",
        ])
        assert code == 0

    def test_bad_option_rejected(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1", "--option", "nonsense",
        ])
        assert code == 2
        assert "bad --option" in capsys.readouterr().err

    def test_impossible_crash_count_rejected(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm1", "--n", "3",
            "--crashes", "3",
        ])
        assert code == 2

    def test_empty_schedule_space_reports_error(self, capsys):
        code = main([
            "explore", "--algorithm", "algorithm2",
            "--strategy", "crash_points", "--budget", "4", "--n", "3",
        ])
        assert code == 2
        assert "crash_points requires" in capsys.readouterr().err
