"""Integration tests for the impossibility construction (Theorem 2) and the
baseline protocols' failure modes."""

import pytest

from repro.experiments.config import Scenario
from repro.experiments.impossibility import build_partition_scenario
from repro.experiments.runner import run_scenario
from repro.network.loss import LossSpec
from repro.workloads.generators import SingleBroadcast


class TestImpossibilityConstruction:
    def test_sub_majority_threshold_violates_uniform_agreement(self):
        # Run R2 of the proof: S1 delivers then crashes; S2 hears nothing.
        scenario, hook = build_partition_scenario(majority_threshold=2)
        result = run_scenario(scenario)
        assert result.metrics.deliveries > 0
        assert hook.crashes, "the adversary must have crashed a deliverer"
        assert not result.verdict.uniform_agreement.holds

    def test_partitioned_side_never_delivers(self):
        scenario, _ = build_partition_scenario(majority_threshold=2)
        result = run_scenario(scenario)
        n = scenario.n_processes
        s2 = range((n + 1) // 2, n)
        for index in s2:
            assert result.simulation.deliveries_of(index) == []

    def test_proper_majority_blocks_instead_of_violating(self):
        scenario, hook = build_partition_scenario(majority_threshold=3)
        result = run_scenario(scenario)
        assert result.metrics.deliveries == 0
        assert not hook.crashes
        assert result.verdict.uniform_agreement.holds

    def test_construction_is_reproducible(self):
        for seed in range(3):
            scenario, _ = build_partition_scenario(majority_threshold=2, seed=seed)
            result = run_scenario(scenario)
            assert not result.verdict.uniform_agreement.holds

    def test_algorithm2_not_fooled_by_partition_with_prescient_oracle(self):
        # With AΘ's prescient CORRECT_ONLY oracle there is no delivery rule
        # an S1-only quorum can satisfy when some correct process is on the
        # S2 side: the run stays safe (it simply cannot deliver until the
        # partition would heal, which in this adversarial run never happens).
        scenario = Scenario(
            name="partition-a2",
            algorithm="algorithm2",
            n_processes=4,
            loss=LossSpec.partition({0, 1}, {2, 3}),
            fairness_bound=None,
            workload=SingleBroadcast(sender=0, time=0.0),
            max_time=40.0,
        )
        result = run_scenario(scenario)
        assert result.verdict.uniform_agreement.holds
        assert result.metrics.deliveries == 0


class TestBestEffortFailureModes:
    def test_loss_breaks_agreement(self):
        # One-shot transmission over very lossy channels: with several seeds,
        # at least one run must leave some correct process without the
        # message while others delivered it.
        violated = 0
        for seed in range(6):
            scenario = Scenario(
                name="be-loss", algorithm="best_effort", n_processes=6,
                loss=LossSpec.bernoulli(0.5), fairness_bound=None,
                workload=SingleBroadcast(sender=0, time=0.0),
                max_time=30.0, seed=seed,
            )
            result = run_scenario(scenario)
            if not result.verdict.uniform_agreement.holds:
                violated += 1
        assert violated > 0

    def test_reliable_channels_and_correct_sender_suffice(self):
        scenario = Scenario(
            name="be-ok", algorithm="best_effort", n_processes=5,
            channel_type="reliable",
            workload=SingleBroadcast(sender=0, time=0.0), max_time=30.0,
        )
        result = run_scenario(scenario)
        assert result.all_properties_hold


class TestEagerRbFailureModes:
    def test_sender_crash_on_quasi_reliable_channels_breaks_uniformity(self):
        # Deterministic construction of the classic non-uniformity scenario:
        # the sender's loopback copy is fast (it delivers to itself), every
        # other channel is slow, and the sender crashes in between.  With
        # quasi-reliable channels the in-flight copies die with the crashed
        # sender, so no other process ever delivers — the sender's delivery
        # violates Uniform Agreement.
        from repro.network.delay import DelaySpec, FixedDelay

        loopback_fast = DelaySpec.custom(
            lambda src, dst, rng: FixedDelay(0.1 if src == dst else 1.0)
        )
        scenario = Scenario(
            name="rb-crash", algorithm="eager_rb", n_processes=5,
            channel_type="quasi_reliable",
            delay=loopback_fast,
            crashes={0: 0.5},
            workload=SingleBroadcast(sender=0, time=0.0),
            max_time=30.0, seed=0,
        )
        result = run_scenario(scenario)
        assert result.simulation.deliveries_of(0) == ["m0"]
        for index in range(1, 5):
            assert result.simulation.deliveries_of(index) == []
        assert not result.verdict.uniform_agreement.holds

    def test_correct_processes_with_reliable_channels_agree(self):
        scenario = Scenario(
            name="rb-ok", algorithm="eager_rb", n_processes=5,
            channel_type="reliable",
            workload=SingleBroadcast(sender=0, time=0.0), max_time=30.0,
        )
        result = run_scenario(scenario)
        assert result.all_properties_hold


class TestUrbProtocolsUnderTheSameAdversity:
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2"])
    def test_urb_protocols_survive_sender_crash_and_loss(self, algorithm):
        scenario = Scenario(
            name="urb-adverse", algorithm=algorithm, n_processes=6,
            loss=LossSpec.bernoulli(0.4),
            crashes={0: 0.6},
            workload=SingleBroadcast(sender=0, time=0.0),
            max_time=200.0,
            stop_when_all_correct_delivered=(algorithm == "algorithm1"),
            stop_when_quiescent=(algorithm == "algorithm2"),
            drain_grace_period=3.0,
            seed=2,
        )
        result = run_scenario(scenario)
        assert result.verdict.uniform_agreement.holds
        assert result.verdict.uniform_integrity.holds
