"""Integration tests for the real-time (asyncio) harness.

These are smoke tests by nature (they use wall-clock time), so the
configurations are chosen to be extremely robust: short delays, generous
durations relative to the tick period, and loss rates that retransmission
covers with overwhelming probability.
"""

import random

import pytest

from repro.core.algorithm1 import MajorityUrbProcess
from repro.core.algorithm2 import QuiescentUrbProcess
from repro.failure_detectors.atheta import AThetaOracle
from repro.failure_detectors.apstar import APStarOracle
from repro.failure_detectors.oracle import GroundTruthOracle
from repro.realtime import RealTimeBroadcast, RealTimeCluster
from repro.simulation.faults import CrashSchedule

N = 4


def make_detectors(n=N, crashes=None, seed=0):
    schedule = CrashSchedule.crash_at(n, crashes or {})
    ground = GroundTruthOracle(schedule, rng=random.Random(seed))
    return (AThetaOracle(ground), APStarOracle(ground))


class TestRealTimeAlgorithm1:
    def test_single_broadcast_reaches_everyone(self):
        cluster = RealTimeCluster(
            N, lambda i, env: MajorityUrbProcess(env, N),
            loss_probability=0.0, tick_interval=0.02, seed=1,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="rt-m0")],
            duration=0.6,
        )
        assert report.delivered_everywhere(["rt-m0"], range(N))
        assert report.total_sends > 0

    def test_lossy_channels_recovered_by_retransmission(self):
        cluster = RealTimeCluster(
            N, lambda i, env: MajorityUrbProcess(env, N),
            loss_probability=0.2, tick_interval=0.02, seed=2,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=1, content="rt-m1")],
            duration=1.0,
        )
        assert report.delivered_everywhere(["rt-m1"], range(N))
        assert report.drops > 0

    def test_keeps_sending_for_the_whole_run(self):
        # Algorithm 1 is non-quiescent: sends happen close to the end of the
        # run as well.
        cluster = RealTimeCluster(
            N, lambda i, env: MajorityUrbProcess(env, N),
            tick_interval=0.02, seed=3,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="m")], duration=0.6
        )
        assert report.last_send_elapsed > 0.4


class TestRealTimeAlgorithm2:
    def test_delivery_and_quiescence(self):
        atheta, apstar = make_detectors()
        cluster = RealTimeCluster(
            N, lambda i, env: QuiescentUrbProcess(env),
            loss_probability=0.1, tick_interval=0.02, seed=4,
            atheta=atheta, apstar=apstar,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="rt-m2")],
            duration=1.0,
        )
        assert report.delivered_everywhere(["rt-m2"], range(N))
        # Quiescence: the protocol fell silent well before the end of the run
        # (every process retired the message after full acknowledgement).
        assert report.last_send_elapsed < 0.8
        for process in cluster.processes.values():
            assert process.pending_retransmissions == 0

    def test_crashed_process_does_not_block_the_others(self):
        crashes = {N - 1: 0.1}
        atheta, apstar = make_detectors(crashes={N - 1: 0.1})
        cluster = RealTimeCluster(
            N, lambda i, env: QuiescentUrbProcess(env),
            tick_interval=0.02, seed=5,
            atheta=atheta, apstar=apstar, crash_after=crashes,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="rt-m3")],
            duration=1.0,
        )
        correct = [index for index in range(N) if index not in crashes]
        assert report.delivered_everywhere(["rt-m3"], correct)

    def test_multi_message_workload(self):
        atheta, apstar = make_detectors()
        cluster = RealTimeCluster(
            N, lambda i, env: QuiescentUrbProcess(env),
            tick_interval=0.02, seed=6, atheta=atheta, apstar=apstar,
        )
        workload = [
            RealTimeBroadcast(delay=0.0, sender=0, content="a"),
            RealTimeBroadcast(delay=0.05, sender=1, content="b"),
            RealTimeBroadcast(delay=0.1, sender=2, content="c"),
        ]
        report = cluster.run_sync(workload, duration=1.0)
        assert report.delivered_everywhere(["a", "b", "c"], range(N))
        # At-most-once delivery per process.
        for deliveries in report.deliveries.values():
            assert len(deliveries) == len(set(deliveries))


class TestRealTimeFaultTolerance:
    """Message loss and mid-run crashes on the asyncio transport.

    The discrete-event suite checks these regimes exhaustively; here the
    point is that the *same protocol objects* survive them on a real-time
    transport, so the configurations stay deliberately forgiving.
    """

    def test_algorithm1_delivers_under_loss_and_midrun_crash(self):
        crashes = {N - 1: 0.15}
        cluster = RealTimeCluster(
            N, lambda i, env: MajorityUrbProcess(env, N),
            loss_probability=0.15, tick_interval=0.02, seed=21,
            crash_after=crashes,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="ft-m1")],
            duration=1.2,
        )
        correct = [index for index in range(N) if index not in crashes]
        assert report.delivered_everywhere(["ft-m1"], correct)
        assert report.drops > 0

    def test_algorithm2_delivers_under_loss_and_midrun_crash(self):
        crashes = {N - 1: 0.15}
        atheta, apstar = make_detectors(crashes=crashes, seed=22)
        cluster = RealTimeCluster(
            N, lambda i, env: QuiescentUrbProcess(env),
            loss_probability=0.15, tick_interval=0.02, seed=22,
            atheta=atheta, apstar=apstar, crash_after=crashes,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="ft-m2")],
            duration=1.2,
        )
        correct = [index for index in range(N) if index not in crashes]
        assert report.delivered_everywhere(["ft-m2"], correct)
        assert report.drops > 0
        # At-most-once delivery survives retransmission under loss.
        for deliveries in report.deliveries.values():
            assert len(deliveries) == len(set(deliveries))

    def test_crashed_sender_message_still_spreads(self):
        # The sender crashes right after first dissemination; the receivers'
        # Task 1 keeps relaying the message, so every correct process
        # delivers it anyway (the paper's majority-relay argument).
        crashes = {0: 0.05}
        cluster = RealTimeCluster(
            N, lambda i, env: MajorityUrbProcess(env, N),
            loss_probability=0.1, tick_interval=0.02, seed=23,
            crash_after=crashes,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="ft-m3")],
            duration=1.2,
        )
        assert report.delivered_everywhere(["ft-m3"], range(1, N))

    def test_initially_crashed_process_takes_no_steps(self):
        crashes = {2: 0.0}
        cluster = RealTimeCluster(
            N, lambda i, env: MajorityUrbProcess(env, N),
            tick_interval=0.02, seed=24, crash_after=crashes,
        )
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.1, sender=0, content="ft-m4")],
            duration=1.0,
        )
        assert report.deliveries[2] == []
        correct = [index for index in range(N) if index != 2]
        assert report.delivered_everywhere(["ft-m4"], correct)


class TestRealTimeValidation:
    def test_parameter_validation(self):
        factory = lambda i, env: MajorityUrbProcess(env, 3)  # noqa: E731
        with pytest.raises(ValueError):
            RealTimeCluster(0, factory)
        with pytest.raises(ValueError):
            RealTimeCluster(3, factory, loss_probability=1.0)
        with pytest.raises(ValueError):
            RealTimeCluster(3, factory, delay_range=(0.0, 0.1))
        with pytest.raises(ValueError):
            RealTimeCluster(3, factory, tick_interval=0.0)

    def test_workload_validation(self):
        cluster = RealTimeCluster(3, lambda i, env: MajorityUrbProcess(env, 3))
        with pytest.raises(ValueError):
            cluster.run_sync([RealTimeBroadcast(delay=0.0, sender=9, content="x")],
                             duration=0.1)
        with pytest.raises(ValueError):
            cluster.run_sync([], duration=0.0)
        with pytest.raises(ValueError):
            RealTimeBroadcast(delay=-1.0, sender=0, content="x")

    def test_report_describe(self):
        cluster = RealTimeCluster(2, lambda i, env: MajorityUrbProcess(env, 2),
                                  tick_interval=0.02)
        report = cluster.run_sync(
            [RealTimeBroadcast(delay=0.0, sender=0, content="m")], duration=0.3
        )
        assert "realtime-run" in report.describe()
