"""Integration tests: full simulated runs of Algorithm 1.

These tests drive the whole stack (scenario → engine → network → protocol →
analysis) and check the paper's Theorem 1 (URB properties under a correct
majority) plus the behavioural claims of §III (fast delivery, non-quiescence).
"""

import pytest

from repro.analysis.quiescence import analyze_quiescence
from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.network.delay import DelaySpec
from repro.network.loss import LossSpec
from repro.workloads.generators import AllToAll, SingleBroadcast, UniformStream


def scenario(**overrides) -> Scenario:
    base = dict(
        name="it-a1",
        algorithm="algorithm1",
        n_processes=5,
        loss=LossSpec.bernoulli(0.2),
        max_time=100.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
        workload=SingleBroadcast(sender=0, time=0.0),
        seed=7,
    )
    base.update(overrides)
    return Scenario(**base)


class TestFailureFreeRuns:
    def test_properties_hold_without_loss(self):
        result = run_scenario(scenario(loss=LossSpec.none()))
        assert result.all_properties_hold
        for index in range(5):
            assert result.simulation.deliveries_of(index) == ["m0"]

    def test_properties_hold_with_loss(self):
        result = run_scenario(scenario(loss=LossSpec.bernoulli(0.4)))
        assert result.all_properties_hold

    def test_properties_hold_with_bursty_loss(self):
        result = run_scenario(
            scenario(loss=LossSpec.gilbert_elliott(loss_bad=0.9, loss_good=0.05))
        )
        assert result.all_properties_hold

    def test_properties_hold_with_drop_first_k(self):
        result = run_scenario(scenario(loss=LossSpec.drop_first_k(3)))
        assert result.all_properties_hold

    def test_all_to_all_workload(self):
        result = run_scenario(
            scenario(workload=AllToAll(5), loss=LossSpec.bernoulli(0.2),
                     max_time=150.0)
        )
        assert result.all_properties_hold
        for index in range(5):
            assert set(result.simulation.deliveries_of(index)) == {
                f"m{k}" for k in range(5)
            }

    def test_stream_workload(self):
        result = run_scenario(
            scenario(workload=UniformStream(4, senders=(0, 2), interval=3.0),
                     max_time=150.0)
        )
        assert result.all_properties_hold

    def test_anonymity_audit_passes(self):
        result = run_scenario(scenario())
        assert result.anonymity.passed


class TestCrashTolerance:
    def test_minority_crashes_tolerated(self):
        result = run_scenario(scenario(n_processes=7, crashes={5: 1.0, 6: 2.0}))
        assert result.all_properties_hold
        for index in range(5):
            assert "m0" in result.simulation.deliveries_of(index)

    def test_initially_crashed_minority(self):
        result = run_scenario(scenario(n_processes=5, crashes={3: 0.0, 4: 0.0}))
        assert result.all_properties_hold
        assert result.simulation.deliveries_of(0) == ["m0"]

    def test_sender_crash_after_broadcast(self):
        result = run_scenario(scenario(crashes={0: 0.5}))
        # Safety always holds; with the sender crashed, delivery depends on
        # whether its initial copies survived, but agreement must never break.
        assert result.verdict.uniform_agreement.holds
        assert result.verdict.uniform_integrity.holds

    def test_blocks_without_majority(self):
        # 3 of 5 crash at time 0: only 2 alive, majority threshold 3 can never
        # be met, so nobody delivers — and Validity is therefore violated.
        result = run_scenario(
            scenario(n_processes=5, crashes={2: 0.0, 3: 0.0, 4: 0.0},
                     stop_when_all_correct_delivered=False, max_time=40.0)
        )
        assert result.metrics.deliveries == 0
        assert result.verdict.uniform_agreement.holds
        assert not result.verdict.validity.holds


class TestNonQuiescence:
    def test_keeps_sending_until_horizon(self):
        result = run_scenario(
            scenario(stop_when_all_correct_delivered=False, max_time=60.0)
        )
        report = analyze_quiescence(result.simulation)
        assert not report.quiescent
        assert report.last_send_time > 55.0

    def test_send_volume_grows_with_horizon(self):
        short = run_scenario(
            scenario(stop_when_all_correct_delivered=False, max_time=20.0)
        )
        long = run_scenario(
            scenario(stop_when_all_correct_delivered=False, max_time=60.0)
        )
        assert long.metrics.total_sends > 2 * short.metrics.total_sends


class TestChannelVariants:
    def test_reliable_channels(self):
        result = run_scenario(scenario(channel_type="reliable"))
        assert result.all_properties_hold

    def test_quasi_reliable_channels(self):
        result = run_scenario(scenario(channel_type="quasi_reliable",
                                       crashes={4: 5.0}))
        assert result.all_properties_hold

    def test_slow_asymmetric_delays(self):
        result = run_scenario(
            scenario(delay=DelaySpec.exponential(mean=1.0, cap=6.0),
                     max_time=200.0)
        )
        assert result.all_properties_hold


class TestFastDelivery:
    def test_delivery_can_precede_msg_reception(self):
        """The §III remark: a process may URB-deliver purely from ACKs."""
        # Use heavy asymmetric delays so that for some seed a process's ACKs
        # overtake the original MSG.  We only assert the property checkers
        # accept such runs (no violation), across several seeds.
        for seed in range(5):
            result = run_scenario(
                scenario(delay=DelaySpec.exponential(mean=0.8, cap=5.0),
                         loss=LossSpec.bernoulli(0.3), seed=seed,
                         max_time=200.0)
            )
            assert result.all_properties_hold


class TestIdentifiedBaselineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_identified_urb_also_satisfies_urb(self, seed):
        result = run_scenario(scenario(algorithm="identified_urb", seed=seed))
        assert result.all_properties_hold

    def test_message_counts_comparable_to_algorithm1(self):
        anonymous = run_scenario(scenario(seed=3))
        identified = run_scenario(scenario(algorithm="identified_urb", seed=3))
        # Same structure, same channels, same seed: traffic within 2x.
        ratio = anonymous.metrics.total_sends / max(identified.metrics.total_sends, 1)
        assert 0.5 < ratio < 2.0
