"""Integration tests for the experiment registry, the experiment modules
(run in quick mode) and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import registry
from repro.experiments.report import ExperimentResult


class TestRegistry:
    def test_all_ten_experiments_registered(self):
        ids = registry.experiment_ids()
        assert ids == [f"E{k}" for k in range(1, 11)]

    def test_lookup_is_case_insensitive_and_tolerant(self):
        assert registry.get_experiment("e3").experiment_id == "E3"
        assert registry.get_experiment("3").experiment_id == "E3"

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            registry.get_experiment("E99")

    def test_entries_have_titles_and_modules(self):
        for experiment_id in registry.experiment_ids():
            entry = registry.get_experiment(experiment_id)
            assert entry.title
            assert entry.module_name.startswith("repro.experiments.")


@pytest.mark.parametrize("experiment_id", registry.experiment_ids())
class TestEveryExperimentQuick:
    def test_runs_and_renders(self, experiment_id):
        result = registry.run_experiment(experiment_id, quick=True, seeds=1)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.artifacts, "every experiment must produce artifacts"
        for artifact in result.artifacts:
            assert artifact.rows, f"{artifact.name} has no rows"
            assert len(artifact.headers) == len(artifact.rows[0])
        text = result.render()
        assert experiment_id in text


class TestExperimentExpectations:
    """Shape checks on the headline results (quick mode, single seed)."""

    def test_e1_every_configuration_satisfies_urb(self):
        result = registry.run_experiment("E1", quick=True)
        table = result.artifacts[0]
        runs = table.column("runs")
        for column in ("validity ok", "agreement ok", "integrity ok"):
            assert table.column(column) == runs

    def test_e3_algorithm1_sends_keep_growing_and_algorithm2_flattens(self):
        result = registry.run_experiment("E3", quick=True)
        figure = result.artifact("Figure 2 — cumulative sends over time")
        a1 = figure.column("algorithm1 cumulative sends")
        a2 = figure.column("algorithm2 cumulative sends")
        # Algorithm 1 keeps climbing over the last half of the run.
        assert a1[-1] > a1[len(a1) // 2] * 1.5
        # Algorithm 2 is flat over the last half of the run.
        assert a2[-1] == pytest.approx(a2[len(a2) // 2])

    def test_e6_sub_majority_violates_and_majority_blocks(self):
        result = registry.run_experiment("E6", quick=True)
        table = result.artifacts[0]
        violations = table.column("uniform agreement violations")
        blocked = table.column("runs blocked (no delivery)")
        assert violations[0] > 0          # sub-majority row
        assert violations[1] == 0         # proper-majority row
        assert blocked[1] > 0

    def test_e8_algorithm2_delivers_beyond_majority(self):
        result = registry.run_experiment("E8", quick=True)
        table = result.artifacts[0]
        rows = table.rows
        for row in rows:
            algorithm, k, has_majority = row[0], row[1], row[2]
            delivered = row[4]
            if algorithm == "algorithm2":
                assert delivered == row[3]
            if algorithm == "algorithm1" and not has_majority:
                assert delivered == 0

    def test_run_all_subset(self):
        results = registry.run_all(quick=True, seeds=1, ids=["E6", "E9"])
        assert [r.experiment_id for r in results] == ["E6", "E9"]


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E3", "--quick"])
        assert args.command == "run"
        assert args.experiment == "E3"
        assert args.quick

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out

    def test_run_command_prints_tables(self, capsys):
        assert main(["run", "E6", "--quick", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out

    def test_run_command_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["run", "E6", "--quick", "--seeds", "1",
                     "--output", str(target)]) == 0
        capsys.readouterr()
        assert "Table 2" in target.read_text()

    def test_demo_command_success(self, capsys):
        code = main(["demo", "--algorithm", "algorithm2", "--n", "4",
                     "--loss", "0.2", "--crashes", "1", "--max-time", "80"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Validity: OK" in out

    def test_demo_command_rejects_all_crashed(self, capsys):
        code = main(["demo", "--n", "3", "--crashes", "3"])
        assert code == 2

    def test_module_entry_point_importable(self):
        import repro.__main__  # noqa: F401
