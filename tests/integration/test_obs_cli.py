"""CLI coverage for the observability opt-ins and the ``obs`` verbs:
``--metrics-out`` / ``--timeline-out`` / ``--metrics-port`` on executing
commands, ``obs snapshot`` rendering and ``obs check`` alert gating."""

from __future__ import annotations

import json
from urllib.request import urlopen

import pytest

from repro import obs
from repro.cli import main


@pytest.fixture(autouse=True)
def clean_registry():
    """CLI runs enable the process-wide registry; isolate every test."""
    obs.reset()
    yield
    obs.reset()
    obs.set_timeline(None)


def demo_args(extra=()):
    return ["demo", "--n", "4", "--loss", "0.1", "--crashes", "1",
            "--max-time", "60", *extra]


class TestMetricsOut:
    def test_demo_writes_snapshot_at_exit(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(demo_args(["--metrics-out", str(out)])) == 0
        assert "metrics snapshot written" in capsys.readouterr().err
        data = json.loads(out.read_text())
        assert data["snapshot_version"] == 1
        runs = data["metrics"]["repro_sim_runs_total"]["samples"]
        assert sum(sample["value"] for sample in runs) == 1

    def test_sweep_snapshot_counts_batch_cells(self, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(["sweep", "--n", "4", "--values", "0.0,0.2",
                     "--seeds", "2", "--max-time", "60",
                     "--metrics-out", str(out)]) == 0
        data = json.loads(out.read_text())
        (sample,) = [
            s for s in data["metrics"]["repro_batch_cells_total"]["samples"]
            if s["labels"] == {"status": "ok"}]
        assert sample["value"] == 4

    def test_campaign_run_snapshot_includes_store_metrics(self, tmp_path):
        out = tmp_path / "metrics.json"
        assert main(["campaign", "run", "--store", str(tmp_path / "store"),
                     "--n", "4", "--values", "0.0", "--seeds", "2",
                     "--max-time", "60", "--metrics-out", str(out)]) == 0
        metrics = json.loads(out.read_text())["metrics"]
        assert "repro_store_puts_total" in metrics
        assert "repro_campaign_cells_total" in metrics

    def test_without_obs_flags_registry_stays_disabled(self):
        assert main(demo_args()) == 0
        assert not obs.enabled()
        assert obs.REGISTRY.get("repro_sim_runs_total") is None


class TestTimelineOut:
    def test_campaign_run_emits_phases_and_store_traffic(self, tmp_path):
        timeline = tmp_path / "run.jsonl"
        assert main(["campaign", "run", "--store", str(tmp_path / "store"),
                     "--n", "4", "--values", "0.0", "--seeds", "2",
                     "--max-time", "60", "--timeline-out",
                     str(timeline)]) == 0
        events = [json.loads(line)
                  for line in timeline.read_text().splitlines()]
        kinds = {event["kind"] for event in events}
        assert {"phase", "store.miss", "store.put"} <= kinds
        phases = {event["name"] for event in events
                  if event["kind"] == "phase"}
        assert {"expand", "execute", "persist"} <= phases


class TestMetricsPort:
    def test_demo_serves_metrics_while_running(self, tmp_path, capsys):
        # Port 0 binds an ephemeral port, reported on stderr; the server
        # is gone once main() returns, so scrape the final snapshot file
        # and assert the announcement instead of racing the run.
        out = tmp_path / "metrics.json"
        assert main(demo_args(["--metrics-port", "0",
                               "--metrics-out", str(out)])) == 0
        err = capsys.readouterr().err
        assert "obs: serving http://127.0.0.1:" in err
        assert out.exists()

    def test_live_scrape_of_a_standing_server(self):
        obs.enable()
        obs.counter("repro_sim_runs_total", "Completed simulation runs.",
                    ("engine", "dispatch_mode")).inc(
            engine="reference", dispatch_mode="per-event")
        with obs.ObsServer(port=0) as server:
            with urlopen(f"http://127.0.0.1:{server.port}/metrics",
                         timeout=5.0) as response:
                body = response.read().decode("utf-8")
        assert "repro_sim_runs_total" in body


class TestObsVerbs:
    def _write_snapshot(self, tmp_path, reclaims=0):
        obs.enable()
        obs.counter("repro_lease_reclaims_total",
                    "Reclaims.").inc(reclaims)
        path = tmp_path / "snapshot.json"
        path.write_text(obs.render_json() + "\n")
        obs.reset()
        return path

    def test_snapshot_renders_table_from_file(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path, reclaims=3)
        assert main(["obs", "snapshot", "--file", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro_lease_reclaims_total" in out
        assert "Metrics snapshot" in out

    def test_snapshot_raw_prints_json(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path)
        assert main(["obs", "snapshot", "--file", str(path), "--raw"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["snapshot_version"] == 1

    def test_snapshot_from_live_url(self, tmp_path, capsys):
        obs.enable()
        obs.gauge("repro_lease_workers_active", "Workers.").set(2)
        with obs.ObsServer(port=0) as server:
            code = main(["obs", "snapshot",
                         "--url", f"http://127.0.0.1:{server.port}"])
        assert code == 0
        assert "repro_lease_workers_active" in capsys.readouterr().out

    def test_snapshot_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "snapshot", "--file",
                     str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_check_passes_quiet_snapshot(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path, reclaims=0)
        assert main(["obs", "check", str(path)]) == 0
        assert "0 of 5 rule(s) firing" in capsys.readouterr().out

    def test_check_fires_on_reclaim_storm(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path, reclaims=100)
        assert main(["obs", "check", str(path)]) == 1
        assert "FIRING" in capsys.readouterr().out

    def test_check_with_custom_rules(self, tmp_path, capsys):
        path = self._write_snapshot(tmp_path, reclaims=1)
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([{
            "name": "any-reclaim", "metric": "repro_lease_reclaims_total",
            "op": ">", "threshold": 0}]))
        assert main(["obs", "check", str(path),
                     "--rules", str(rules)]) == 1
        assert "any-reclaim" in capsys.readouterr().out


class TestWatchRates:
    def test_status_watch_completes_and_prints_rate(self, tmp_path,
                                                    capsys):
        store = tmp_path / "store"
        assert main(["campaign", "run", "--store", str(store),
                     "--name", "watched", "--n", "4", "--values", "0.0",
                     "--seeds", "2", "--max-time", "60"]) == 0
        capsys.readouterr()
        # The campaign is already complete: --watch prints one status,
        # one rate line, and returns immediately.
        assert main(["campaign", "status", "--store", str(store),
                     "watched", "--watch", "--interval", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "complete" in out
        assert "rate:" not in out or "cells/s" in out
