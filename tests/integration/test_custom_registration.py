"""End-to-end tests of the registry extension point: a protocol registered
outside ``repro.core`` becomes a first-class citizen of Scenario validation,
the engine builders, ``run_scenario``, the batch runner and the CLI."""

from typing import Any

import pytest

from repro import Scenario, run_scenario
from repro.cli import build_parser
from repro.core import AnonymousProcess, MsgPayload, TaggedMessage
from repro.experiments.batch import ScenarioSuite
from repro.experiments.runner import build_engine
from repro.registry import AlgorithmSpec, algorithms, register_algorithm


class FloodProcess(AnonymousProcess):
    """Minimal correct-ish protocol: re-broadcast everything every tick."""

    name = "flood"

    def __init__(self, env) -> None:
        super().__init__(env, eager_first_broadcast=True)
        self._seen: set[TaggedMessage] = set()

    def urb_broadcast(self, content: Any) -> None:
        message = TaggedMessage(content, self._new_tag())
        self._seen.add(message)
        self._record_delivery(message)
        self.env.broadcast(MsgPayload(message))

    def _on_msg(self, payload: MsgPayload) -> None:
        if payload.message not in self._seen:
            self._seen.add(payload.message)
            self._record_delivery(payload.message)

    def _on_ack(self, payload) -> None:
        return

    def on_tick(self) -> None:
        for message in self._seen:
            self.env.broadcast(MsgPayload(message))


@pytest.fixture
def flood_registered():
    @register_algorithm("flood_test", description="flood everything")
    def build_flood(scenario, index, env):
        return FloodProcess(env)

    yield "flood_test"
    algorithms.unregister("flood_test")


def flood_scenario(**overrides) -> Scenario:
    defaults = dict(
        algorithm="flood_test",
        n_processes=4,
        max_time=30.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


class TestRegistryRoundTrip:
    def test_scenario_validates_registered_name(self, flood_registered):
        assert flood_scenario().algorithm == "flood_test"

    def test_engine_builds_registered_protocol(self, flood_registered):
        engine = build_engine(flood_scenario())
        assert all(isinstance(p, FloodProcess)
                   for p in engine.processes.values())

    def test_run_scenario_delivers_everywhere(self, flood_registered):
        result = run_scenario(flood_scenario())
        assert result.simulation.metrics_summary().deliveries == 4
        assert result.verdict.all_hold

    def test_suite_runs_registered_protocol(self, flood_registered):
        result = (ScenarioSuite("flood")
                  .add(flood_scenario())
                  .with_seeds(2)
                  .run())
        assert result.ok
        assert len(result.results) == 2

    def test_cli_choices_include_registered_name(self, flood_registered):
        parser = build_parser()
        args = parser.parse_args(["demo", "--algorithm", "flood_test"])
        assert args.algorithm == "flood_test"

    def test_name_rejected_after_unregistration(self):
        with pytest.raises(ValueError):
            Scenario(algorithm="flood_test")


class TestRegistryFirstClassAnalysis:
    def test_anonymity_audit_uses_spec_metadata(self):
        spec = AlgorithmSpec(
            name="tmp_identified",
            factory=lambda scenario, index, env: FloodProcess(env),
            anonymous=False,
        )
        with algorithms.scoped(spec):
            result = run_scenario(flood_scenario(algorithm="tmp_identified"))
        # The audit ran in allow-identified mode and must not flag the run.
        assert result.anonymity.passed
