"""Integration tests for repository-level artefacts: the EXPERIMENTS.md
generator script and the presence/consistency of the documentation files."""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestGenerateExperimentsScript:
    def test_script_writes_report(self, tmp_path):
        output = tmp_path / "EXPERIMENTS.md"
        completed = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "generate_experiments_md.py"),
                "--quick", "--seeds", "1", "--output", str(output),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        text = output.read_text(encoding="utf-8")
        for experiment_id in (f"E{k}" for k in range(1, 11)):
            assert f"## {experiment_id} — " in text
        assert "Paper claim" in text
        assert "Measured" in text


class TestDocumentationFiles:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO_ROOT / name).exists(), f"{name} is missing"

    def test_design_lists_every_experiment(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for experiment_id in (f"E{k}" for k in range(1, 11)):
            assert re.search(rf"\b{experiment_id}\b", design), (
                f"DESIGN.md does not mention experiment {experiment_id}"
            )

    def test_experiments_md_contains_measured_tables(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        assert "Table 1" in experiments
        assert "Figure 2" in experiments
        assert "```text" in experiments

    def test_readme_mentions_examples_that_exist(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for example in (REPO_ROOT / "examples").glob("*.py"):
            assert example.name in readme, (
                f"README.md does not mention examples/{example.name}"
            )

    def test_every_example_is_runnable_python(self):
        for example in (REPO_ROOT / "examples").glob("*.py"):
            source = example.read_text(encoding="utf-8")
            compile(source, str(example), "exec")
            assert '__main__' in source
