"""Integration tests: full simulated runs of Algorithm 2.

Checks the paper's Theorem 3: Algorithm 2 implements URB with any number of
crashes, and it is quiescent.
"""

import pytest

from repro.analysis.quiescence import analyze_quiescence, retire_times
from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.failure_detectors.policies import DisseminationPolicy
from repro.network.loss import LossSpec
from repro.workloads.generators import AllToAll, SingleBroadcast, UniformStream


def scenario(**overrides) -> Scenario:
    base = dict(
        name="it-a2",
        algorithm="algorithm2",
        n_processes=5,
        loss=LossSpec.bernoulli(0.2),
        max_time=150.0,
        stop_when_quiescent=True,
        drain_grace_period=4.0,
        workload=SingleBroadcast(sender=0, time=0.0),
        seed=11,
    )
    base.update(overrides)
    return Scenario(**base)


class TestCorrectness:
    def test_failure_free_run(self):
        result = run_scenario(scenario(loss=LossSpec.none()))
        assert result.all_properties_hold
        for index in range(5):
            assert result.simulation.deliveries_of(index) == ["m0"]

    def test_lossy_run(self):
        result = run_scenario(scenario(loss=LossSpec.bernoulli(0.5)))
        assert result.all_properties_hold

    def test_minority_crashes(self):
        result = run_scenario(scenario(crashes={3: 2.0, 4: 3.0}))
        assert result.all_properties_hold
        for index in range(3):
            assert "m0" in result.simulation.deliveries_of(index)

    def test_majority_crashes_still_delivers(self):
        # The headline claim: URB with any number of crashes (here 3 of 5).
        result = run_scenario(scenario(crashes={2: 1.0, 3: 1.5, 4: 2.0}))
        assert result.all_properties_hold
        for index in (0, 1):
            assert "m0" in result.simulation.deliveries_of(index)

    def test_single_correct_process(self):
        result = run_scenario(
            scenario(crashes={1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0}, max_time=100.0)
        )
        assert result.all_properties_hold
        assert result.simulation.deliveries_of(0) == ["m0"]

    def test_all_to_all_workload(self):
        result = run_scenario(
            scenario(workload=AllToAll(5), crashes={4: 4.0}, max_time=200.0)
        )
        assert result.all_properties_hold
        expected = {f"m{k}" for k in range(5)}
        for index in range(4):
            assert expected <= set(result.simulation.deliveries_of(index))

    def test_stream_workload(self):
        result = run_scenario(
            scenario(workload=UniformStream(4, senders=(0, 1), interval=4.0),
                     max_time=200.0)
        )
        assert result.all_properties_hold

    def test_anonymity_audit_passes(self):
        result = run_scenario(scenario())
        assert result.anonymity.passed


class TestQuiescence:
    def test_failure_free_quiescence(self):
        result = run_scenario(scenario(loss=LossSpec.bernoulli(0.3)))
        report = result.quiescence
        assert report.quiescent
        assert result.simulation.stop_reason == "quiescent"

    def test_quiescence_with_crashes(self):
        result = run_scenario(scenario(crashes={3: 2.0, 4: 5.0}, max_time=200.0))
        assert result.quiescence.quiescent

    def test_every_correct_process_retires_every_message(self):
        result = run_scenario(scenario())
        for index in result.simulation.correct_indices():
            process = result.simulation.processes[index]
            assert process.pending_retransmissions == 0
            assert process.retired_count == 1

    def test_retire_events_traced(self):
        result = run_scenario(scenario())
        retires = retire_times(result.simulation)
        assert len(retires) == len(result.simulation.correct_indices())

    def test_quiescence_time_scales_with_loss(self):
        quiet = run_scenario(scenario(loss=LossSpec.none(), seed=2))
        noisy = run_scenario(scenario(loss=LossSpec.bernoulli(0.6), seed=2,
                                      max_time=300.0))
        assert (noisy.quiescence.last_send_time
                >= quiet.quiescence.last_send_time)

    def test_no_retire_variant_is_not_quiescent(self):
        result = run_scenario(
            scenario(retire_enabled=False, stop_when_quiescent=False,
                     max_time=60.0)
        )
        report = analyze_quiescence(result.simulation)
        assert not report.quiescent


class TestDetectorVariants:
    def test_detection_based_oracle_with_majority(self):
        result = run_scenario(
            scenario(fd_policy=DisseminationPolicy.ALL_PROCESSES,
                     crashes={4: 1.0}, fd_detection_delay=2.0,
                     max_time=200.0)
        )
        assert result.all_properties_hold
        assert result.quiescence.quiescent

    def test_learning_delay_exercises_label_reconciliation(self):
        result = run_scenario(
            scenario(fd_learn_delay=5.0, loss=LossSpec.bernoulli(0.3),
                     max_time=200.0)
        )
        assert result.all_properties_hold

    def test_detection_delay_slows_delivery_with_realistic_oracle(self):
        fast = run_scenario(
            scenario(fd_policy=DisseminationPolicy.ALL_PROCESSES,
                     crashes={4: 0.5}, fd_detection_delay=0.0,
                     apstar_detection_delay=0.0, seed=4, max_time=250.0)
        )
        slow = run_scenario(
            scenario(fd_policy=DisseminationPolicy.ALL_PROCESSES,
                     crashes={4: 0.5}, fd_detection_delay=10.0,
                     apstar_detection_delay=10.0, seed=4, max_time=250.0)
        )
        assert slow.metrics.mean_latency > fast.metrics.mean_latency

    def test_own_only_policy_violates_accuracy_and_agreement(self):
        # The deliberately unsound OWN_ONLY policy lets a process deliver as
        # soon as its own acknowledgement loops back (counter[own label] = 1
        # = number).  Combined with the impossibility-style adversary — the
        # deliverer is isolated and crashes right after delivering — Uniform
        # Agreement breaks, demonstrating why AΘ-accuracy matters.
        from repro.network.loss import LossSpec as _LossSpec
        from repro.simulation.hooks import CrashOnDeliveryHook

        hook = CrashOnDeliveryHook(targets={0})
        result = run_scenario(
            scenario(
                fd_policy=DisseminationPolicy.OWN_ONLY,
                loss=_LossSpec.partition({0}, {1, 2, 3, 4}),
                fairness_bound=None,
                hooks=(hook,),
                stop_when_quiescent=False,
                max_time=40.0,
            )
        )
        assert result.metrics.deliveries >= 1
        assert hook.crashes and hook.crashes[0][0] == 0
        assert not result.verdict.uniform_agreement.holds
        # Integrity (at-most-once, only broadcast messages) still holds.
        assert result.verdict.uniform_integrity.holds

    def test_own_only_policy_flag_reports_unsound(self):
        assert not DisseminationPolicy.OWN_ONLY.is_safe_without_majority

    def test_strict_equality_mode_still_correct(self):
        result = run_scenario(scenario(strict_equality=True))
        assert result.all_properties_hold


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_seed_reproduces_run(self, seed):
        a = run_scenario(scenario(seed=seed))
        b = run_scenario(scenario(seed=seed))
        assert a.metrics.total_sends == b.metrics.total_sends
        assert a.metrics.mean_latency == b.metrics.mean_latency
        assert a.quiescence.last_send_time == b.quiescence.last_send_time
