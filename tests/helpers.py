"""Shared test helpers.

`FakeEnvironment` is a minimal in-memory implementation of
:class:`repro.core.interfaces.EnvironmentAPI` used by the protocol *unit*
tests: it records everything the process broadcasts and lets the test control
the failure-detector views directly, so each pseudocode branch can be
exercised without spinning up the simulator.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.messages import TaggedMessage
from repro.failure_detectors.base import FailureDetectorView


class FakeEnvironment:
    """In-memory EnvironmentAPI for protocol unit tests."""

    def __init__(self, seed: int = 0,
                 atheta_view: FailureDetectorView | None = None,
                 apstar_view: FailureDetectorView | None = None) -> None:
        self._random = random.Random(seed)
        self.atheta_view = atheta_view or FailureDetectorView.empty()
        self.apstar_view = apstar_view or FailureDetectorView.empty()
        #: Every payload the process handed to ``broadcast``.
        self.broadcasts: list[Any] = []
        #: Every message reported through ``notify_delivery``.
        self.deliveries: list[TaggedMessage] = []
        #: Every message reported through ``notify_retire``.
        self.retirements: list[TaggedMessage] = []

    # -- EnvironmentAPI --------------------------------------------------- #
    def broadcast(self, payload: Any) -> None:
        self.broadcasts.append(payload)

    @property
    def random(self) -> random.Random:
        return self._random

    def atheta(self) -> FailureDetectorView:
        return self.atheta_view

    def apstar(self) -> FailureDetectorView:
        return self.apstar_view

    def notify_delivery(self, message: TaggedMessage) -> None:
        self.deliveries.append(message)

    def notify_retire(self, message: TaggedMessage) -> None:
        self.retirements.append(message)

    # -- test conveniences ------------------------------------------------ #
    def broadcasts_of_kind(self, kind: str) -> list[Any]:
        """Broadcast payloads whose wire kind matches *kind*."""
        return [p for p in self.broadcasts if getattr(p, "kind", None) == kind]

    def clear(self) -> None:
        """Forget recorded broadcasts/deliveries (keeps RNG state)."""
        self.broadcasts.clear()
        self.deliveries.clear()
        self.retirements.clear()


def drain_loopback(process, env: FakeEnvironment, max_rounds: int = 10) -> None:
    """Feed the process its own broadcasts until it stops producing new ones.

    Emulates a perfectly reliable loopback channel, useful for single-process
    unit tests of the acknowledge-then-count path.
    """
    delivered_upto = 0
    for _ in range(max_rounds):
        pending = env.broadcasts[delivered_upto:]
        if not pending:
            return
        delivered_upto = len(env.broadcasts)
        for payload in pending:
            process.on_receive(payload)
    raise AssertionError("loopback did not stabilise within max_rounds")
