"""Unit tests for the statistics helpers and table rendering."""

import math

import pytest

from repro.analysis.stats import (
    mean_confidence_interval,
    ratio,
    summarize,
)
from repro.analysis.tables import (
    format_cell,
    render_ascii_curve,
    render_series,
    render_table,
)


class TestSummarize:
    def test_empty_returns_none(self):
        assert summarize([]) is None

    def test_single_value(self):
        stats = summarize([3.0])
        assert stats.count == 1
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 3.0

    def test_known_sample(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.mean == pytest.approx(2.5)
        assert stats.median == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p95 == pytest.approx(3.85)

    def test_as_dict_keys(self):
        data = summarize([1.0, 2.0]).as_dict()
        assert set(data) == {"count", "mean", "std", "min", "median", "p95", "max"}


class TestConfidenceInterval:
    def test_single_sample_degenerates(self):
        mean, low, high = mean_confidence_interval([5.0])
        assert mean == low == high == 5.0

    def test_interval_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert low <= mean <= high
        assert mean == pytest.approx(3.0)

    def test_wider_confidence_wider_interval(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        _, low95, high95 = mean_confidence_interval(data, 0.95)
        _, low80, high80 = mean_confidence_interval(data, 0.80)
        assert (high95 - low95) > (high80 - low80)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_interval_shrinks_with_more_data(self):
        narrow = mean_confidence_interval([2.0, 2.1] * 50)
        wide = mean_confidence_interval([2.0, 2.1] * 2)
        assert (narrow[2] - narrow[1]) < (wide[2] - wide[1])


class TestRatio:
    def test_normal_division(self):
        assert ratio(6.0, 3.0) == 2.0

    def test_x_over_zero_is_inf(self):
        assert math.isinf(ratio(5.0, 0.0))

    def test_zero_over_zero_is_nan(self):
        assert math.isnan(ratio(0.0, 0.0))


class TestFormatCell:
    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_none(self):
        assert format_cell(None) == "-"

    def test_float_formatting(self):
        assert format_cell(3.14159) == "3.14"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_headers_and_rows_aligned(self):
        text = render_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # Every data line must be at least as wide as its content columns.
        assert "alpha" in lines[2]
        assert "22" in lines[3]

    def test_title_rendered(self):
        text = render_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"
        assert text.splitlines()[1] == "========"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_render_series(self):
        text = render_series("curve", [(0, 1.0), (1, 2.0)], x_label="t",
                             y_label="sends")
        assert "curve" in text
        assert "t" in text.splitlines()[2]

    def test_booleans_in_table(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text
        assert "no" in text


class TestAsciiCurve:
    def test_empty_points(self):
        assert "no data" in render_ascii_curve([], label="x")

    def test_bars_scale_with_values(self):
        text = render_ascii_curve([(0.0, 1.0), (1.0, 10.0)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_label_included(self):
        assert render_ascii_curve([(0.0, 1.0)], label="sends").startswith("sends")

    def test_zero_values_do_not_crash(self):
        text = render_ascii_curve([(0.0, 0.0), (1.0, 0.0)])
        assert "0" in text
