"""Unit tests for the campaign content hash and the persistent result store."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.campaigns import (
    Campaign,
    ResultStore,
    SchemaMismatchError,
    StoreError,
    canonical_scenario_json,
    scenario_cell_key,
)
from repro.campaigns.hashing import scenario_from_canonical_dict
from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.explore.explorer import Counterexample
from repro.network.loss import LossSpec
from repro.simulation.hooks import EngineHook
from repro.workloads.generators import SingleBroadcast


def quick_scenario(**overrides) -> Scenario:
    base = dict(
        name="store-test",
        algorithm="algorithm2",
        n_processes=4,
        max_time=60.0,
        stop_when_quiescent=True,
        drain_grace_period=3.0,
    )
    base.update(overrides)
    return Scenario(**base)


class TestScenarioCellKey:
    def test_equal_scenarios_hash_equally(self):
        assert scenario_cell_key(quick_scenario()) == scenario_cell_key(
            quick_scenario()
        )

    def test_key_is_stable_across_construction_order(self):
        # Same fields reached through different construction paths (and
        # metadata insertion orders) must produce the same key.
        direct = quick_scenario(seed=3, metadata={"a": 1, "b": 2})
        via_with = quick_scenario(metadata={"b": 2, "a": 1}).with_seed(3)
        assert scenario_cell_key(direct) == scenario_cell_key(via_with)

    @pytest.mark.parametrize("changes", [
        {"seed": 1},
        {"n_processes": 5},
        {"algorithm": "algorithm1"},
        {"loss": LossSpec.bernoulli(0.1)},
        {"tick_interval": 2.0},
        {"metadata": {"k": 1}},
        {"explore_strategy": "random_walk"},
        {"explore_strategy": "random_walk", "explore_index": 7},
    ])
    def test_any_field_change_changes_the_key(self, changes):
        base = quick_scenario()
        assert scenario_cell_key(base) != scenario_cell_key(
            base.with_(**changes)
        )

    def test_canonical_json_is_key_sorted_and_minified(self):
        text = canonical_scenario_json(quick_scenario())
        data = json.loads(text)
        assert list(data) == sorted(data)
        assert ": " not in text and ", " not in text

    def test_python_equal_numeric_fields_hash_equally(self):
        # int-specified values compare equal to their float forms and must
        # land in the same cell (the serialised form coerces to float).
        assert scenario_cell_key(
            quick_scenario(crashes={3: 2}, max_time=60)
        ) == scenario_cell_key(quick_scenario(crashes={3: 2.0}, max_time=60.0))

    def test_key_is_stable_through_the_canonical_round_trip(self):
        scenario = quick_scenario(crashes={3: 2}, max_time=60)
        rebuilt = scenario_from_canonical_dict(
            json.loads(canonical_scenario_json(scenario))
        )
        assert scenario_cell_key(rebuilt) == scenario_cell_key(scenario)

    def test_canonical_round_trip_rebuilds_the_scenario(self):
        scenario = quick_scenario(seed=9, crashes={3: 2.0},
                                  loss=LossSpec.bernoulli(0.2))
        rebuilt = scenario_from_canonical_dict(
            json.loads(canonical_scenario_json(scenario))
        )
        assert rebuilt == scenario
        assert scenario_cell_key(rebuilt) == scenario_cell_key(scenario)

    def test_unserialisable_scenarios_are_rejected(self):
        with pytest.raises(ValueError):
            scenario_cell_key(quick_scenario(hooks=(EngineHook(),)))
        with pytest.raises(ValueError):
            scenario_cell_key(
                quick_scenario(workload=SingleBroadcast(sender=0))
            )
        with pytest.raises(ValueError):
            scenario_cell_key(quick_scenario(metadata={"bad": object()}))


class TestResultStore:
    def test_put_get_round_trip(self, tmp_path):
        scenario = quick_scenario()
        result = run_scenario(scenario)
        with ResultStore(tmp_path / "store") as store:
            row = store.put(result)
            assert store.puts == 1
            key = scenario_cell_key(scenario)
            assert row.cell_key == key
            assert store.contains(key) and store.hits == 1
            fetched = store.get(key)
            assert fetched == row
            assert fetched.algorithm == "algorithm2"
            assert fetched.all_properties_hold
            assert fetched.mean_latency == result.metrics.mean_latency

    def test_put_many_batches_in_one_transaction(self, tmp_path):
        scenarios = [quick_scenario(seed=s) for s in range(3)]
        results = [run_scenario(s) for s in scenarios]
        with ResultStore(tmp_path / "store") as store:
            rows = store.put_many(results)
            assert store.puts == 3
            assert [row.cell_key for row in rows] == [
                scenario_cell_key(s) for s in scenarios
            ]
            for row, result in zip(rows, results):
                assert store.get(row.cell_key, count=False) == row
                payload = store.load(row.cell_key)
                assert payload["scenario"] == result.scenario

    def test_put_many_matches_individual_puts(self, tmp_path):
        scenarios = [quick_scenario(seed=s) for s in range(2)]
        results = [run_scenario(s) for s in scenarios]
        keys = [scenario_cell_key(s) for s in scenarios]
        with ResultStore(tmp_path / "one") as one:
            single = [one.put(r, cell_key=k) for r, k in zip(results, keys)]
        with ResultStore(tmp_path / "many") as many:
            batched = many.put_many(results, cell_keys=keys)
        for a, b in zip(single, batched):
            # created_at is stamped at write time; everything else must be
            # byte-for-byte what the one-at-a-time path stores.
            assert a == b.__class__(**{**b.__dict__,
                                       "created_at": a.created_at})

    def test_put_many_rejects_mismatched_key_count(self, tmp_path):
        result = run_scenario(quick_scenario())
        with ResultStore(tmp_path / "store") as store:
            with pytest.raises(StoreError):
                store.put_many([result], cell_keys=["a", "b"])
            assert store.puts == 0

    def test_put_many_empty_is_a_noop(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            assert store.put_many([]) == []
            assert store.puts == 0 and len(store) == 0

    def test_load_rebuilds_scenario_and_provenance(self, tmp_path):
        scenario = quick_scenario(seed=5)
        result = run_scenario(scenario)
        with ResultStore(tmp_path / "store") as store:
            row = store.put(result)
            payload = store.load(row.cell_key)
        assert payload["scenario"] == scenario
        assert payload["result"]["schedule"] == result.simulation.schedule
        assert payload["result"]["metrics"]["deliveries"] == (
            result.metrics.deliveries
        )

    def test_miss_counters_and_missing_get(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            assert store.get("0" * 32) is None
            assert not store.contains("0" * 32)
            assert store.misses == 2 and store.hits == 0

    def test_query_filters_and_order(self, tmp_path):
        scenarios = [
            quick_scenario(seed=s, loss=LossSpec.bernoulli(p) if p else
                           LossSpec.none())
            for p in (0.0, 0.2) for s in (0, 1)
        ]
        with ResultStore(tmp_path / "store") as store:
            for scenario in scenarios:
                store.put(run_scenario(scenario))
            assert len(store) == 4
            lossy = store.query(loss=0.2)
            assert [r.seed for r in lossy] == [0, 1]
            assert all(r.loss_kind == "bernoulli" for r in lossy)
            assert len(store.query(algorithm="algorithm2")) == 4
            assert store.query(algorithm="algorithm1") == []
            assert len(store.query(all_hold=True)) == 4
            assert len(store.query(limit=3)) == 3
            with pytest.raises(StoreError):
                store.query(nonsense=1)

    def test_campaign_registration_guards(self, tmp_path):
        cells = [(0, "g", "k0"), (1, "g", "k1")]
        with ResultStore(tmp_path / "store") as store:
            store.register_campaign("c1", "suite", cells)
            with pytest.raises(StoreError, match="already exists"):
                store.register_campaign("c1", "suite", cells)
            # Identical manifest resumes fine.
            store.register_campaign("c1", "suite", cells, resume=True)
            with pytest.raises(StoreError, match="different cell list"):
                store.register_campaign("c1", "suite", cells[:1], resume=True)
            assert store.campaign_cells("c1") == cells
            info = store.campaign_info("c1")
            assert info.total == 2 and info.done == 0 and not info.complete
            store.delete_campaign("c1")
            assert store.campaign_info("c1") is None
            with pytest.raises(StoreError):
                store.delete_campaign("c1")

    def test_schema_mismatch_is_loud(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            store._db.execute(
                "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
            )
            store._db.commit()
        with pytest.raises(SchemaMismatchError):
            ResultStore(root)

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            ResultStore(tmp_path / "nowhere", create=False)

    def test_store_path_that_is_a_file_raises_store_error(self, tmp_path):
        target = tmp_path / "storefile"
        target.write_text("not a directory")
        with pytest.raises(StoreError, match="cannot use"):
            ResultStore(target)

    def test_gc_removes_orphans_and_repairs_missing_blobs(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            row_a = store.put(run_scenario(quick_scenario(seed=0)))
            row_b = store.put(run_scenario(quick_scenario(seed=1)))
            # Orphan blob: on disk, not indexed.
            orphan = store._blob_path("ff" * 16)
            orphan.parent.mkdir(exist_ok=True)
            orphan.write_bytes(zlib.compress(b"{}"))
            # Missing blob: indexed, vanished from disk.
            store._blob_path(row_b.cell_key).unlink()
            stats = store.gc()
            assert stats.orphan_blobs == 1
            assert stats.missing_blobs == 1
            assert store.get(row_b.cell_key, count=False) is None
            assert store.get(row_a.cell_key, count=False) is not None

    def test_gc_drop_unreferenced(self, tmp_path):
        scenario = quick_scenario()
        with ResultStore(tmp_path / "store") as store:
            Campaign(store, [scenario], name="keep").run()
            store.put(run_scenario(quick_scenario(seed=77)))
            assert len(store) == 2
            stats = store.gc(drop_unreferenced=True)
            assert stats.dropped_results == 1
            assert len(store) == 1
            assert store.contains(scenario_cell_key(scenario), count=False)


class TestCounterexampleArtifacts:
    def make_counterexample(self) -> Counterexample:
        return Counterexample(
            scenario=quick_scenario(algorithm="algorithm1_noretx"),
            strategy="random_walk",
            schedule_index=3,
            seed=0,
            schedule_hash="abcd1234abcd1234",
            decisions=(("drop", 1, 2, 0), ("deliver", 0, 1, 1)),
            violations=("Validity: nobody delivered",),
            signature=("Validity",),
            shrunk_decisions=(("drop", 1, 2, 0),),
            shrunk_hash="ffff0000ffff0000",
            shrunk_verified=True,
            shrink_tests=5,
        )

    def test_put_query_export_round_trip(self, tmp_path):
        counterexample = self.make_counterexample()
        with ResultStore(tmp_path / "store") as store:
            artifact_id = store.put_counterexample(counterexample)
            rows = store.counterexamples()
            assert len(rows) == 1
            assert rows[0].artifact_id == artifact_id
            assert rows[0].schedule_hash == "abcd1234abcd1234"
            assert rows[0].signature == ("Validity",)
            assert rows[0].algorithm == "algorithm1_noretx"
            assert rows[0].shrunk_verified
            # Export accepts the artifact id and (unambiguous) schedule hash.
            exported = store.export_counterexample(artifact_id,
                                                   tmp_path / "ce.json")
            by_hash = store.export_counterexample("abcd1234abcd1234",
                                                  tmp_path / "ce2.json")
            data = json.loads(exported.read_text())
            assert data == json.loads(by_hash.read_text())
        from repro.explore.serialize import counterexample_to_dict

        assert data == counterexample_to_dict(counterexample)

    def test_same_schedule_different_scenarios_both_kept(self, tmp_path):
        import dataclasses

        first = self.make_counterexample()
        # A different scenario can legitimately produce the same decision
        # trace (hence schedule hash); both artifacts must survive.
        second = dataclasses.replace(
            first, scenario=first.scenario.with_seed(99))
        with ResultStore(tmp_path / "store") as store:
            id_a = store.put_counterexample(first)
            id_b = store.put_counterexample(second)
            assert id_a != id_b
            assert len(store.counterexamples()) == 2
            # The shared schedule hash is now ambiguous as a reference.
            with pytest.raises(StoreError, match="matches 2"):
                store.load_counterexample_dict("abcd1234abcd1234")
            assert store.load_counterexample_dict(id_b)["scenario"]["seed"] == 99

    def test_re_storing_the_same_artifact_is_idempotent(self, tmp_path):
        counterexample = self.make_counterexample()
        with ResultStore(tmp_path / "store") as store:
            first = store.put_counterexample(counterexample)
            second = store.put_counterexample(counterexample)
            assert first == second
            assert len(store.counterexamples()) == 1

    def test_unknown_counterexample_raises(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            with pytest.raises(StoreError):
                store.load_counterexample_dict("nope")
