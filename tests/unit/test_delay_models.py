"""Unit tests for the channel delay models."""

import random

import pytest

from repro.network.delay import (
    DelaySpec,
    ExponentialDelay,
    FixedDelay,
    UniformDelay,
)


class TestFixedDelay:
    def test_constant(self):
        model = FixedDelay(0.7)
        assert all(model.sample() == 0.7 for _ in range(5))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FixedDelay(0.0)

    def test_describe(self):
        assert "0.7" in FixedDelay(0.7).describe()


class TestUniformDelay:
    def test_within_bounds(self):
        model = UniformDelay(random.Random(0), low=0.2, high=0.9)
        samples = [model.sample() for _ in range(200)]
        assert all(0.2 <= s <= 0.9 for s in samples)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            UniformDelay(random.Random(0), low=1.0, high=0.5)

    def test_rejects_non_positive_low(self):
        with pytest.raises(ValueError):
            UniformDelay(random.Random(0), low=0.0, high=1.0)

    def test_deterministic_given_rng(self):
        a = UniformDelay(random.Random(5))
        b = UniformDelay(random.Random(5))
        assert [a.sample() for _ in range(5)] == [b.sample() for _ in range(5)]

    def test_describe(self):
        assert "uniform" in UniformDelay(random.Random(0)).describe()


class TestExponentialDelay:
    def test_positive_samples(self):
        model = ExponentialDelay(random.Random(1), mean=0.5)
        assert all(model.sample() > 0 for _ in range(200))

    def test_cap_respected(self):
        model = ExponentialDelay(random.Random(1), mean=5.0, cap=1.0)
        assert all(model.sample() <= 1.0 for _ in range(200))

    def test_minimum_respected(self):
        model = ExponentialDelay(random.Random(1), mean=0.001, minimum=0.01)
        assert all(model.sample() >= 0.01 for _ in range(200))

    def test_mean_roughly_matches(self):
        model = ExponentialDelay(random.Random(2), mean=0.5)
        samples = [model.sample() for _ in range(5000)]
        assert 0.4 < sum(samples) / len(samples) < 0.6

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ExponentialDelay(random.Random(0), mean=0.0)
        with pytest.raises(ValueError):
            ExponentialDelay(random.Random(0), mean=1.0, cap=0.0)
        with pytest.raises(ValueError):
            ExponentialDelay(random.Random(0), mean=1.0, minimum=0.0)

    def test_describe_mentions_cap(self):
        assert "cap" in ExponentialDelay(random.Random(0), mean=1.0, cap=2.0).describe()


class TestDelaySpec:
    def test_fixed_spec(self):
        model = DelaySpec.fixed(2.0).build(0, 1, random.Random(0))
        assert isinstance(model, FixedDelay)
        assert model.delay == 2.0

    def test_uniform_spec(self):
        model = DelaySpec.uniform(0.1, 0.2).build(0, 1, random.Random(0))
        assert isinstance(model, UniformDelay)

    def test_exponential_spec(self):
        model = DelaySpec.exponential(mean=0.3, cap=1.0).build(0, 1, random.Random(0))
        assert isinstance(model, ExponentialDelay)
        assert model.cap == 1.0

    def test_exponential_spec_without_cap(self):
        model = DelaySpec.exponential(mean=0.3).build(0, 1, random.Random(0))
        assert model.cap is None

    def test_custom_spec(self):
        spec = DelaySpec.custom(lambda src, dst, rng: FixedDelay(src + dst + 1))
        assert spec.build(1, 2, random.Random(0)).delay == 4

    def test_custom_without_factory_rejected(self):
        with pytest.raises(ValueError):
            DelaySpec(kind="custom")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            DelaySpec(kind="warp")

    def test_describe(self):
        assert "fixed" in DelaySpec.fixed(1.0).describe()
        assert "uniform" in DelaySpec.uniform().describe()
        assert "exponential" in DelaySpec.exponential().describe()
