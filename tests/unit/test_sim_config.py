"""Unit tests for SimulationConfig and StopConditions."""

import pytest

from repro.simulation.config import SimulationConfig, StopConditions


class TestStopConditions:
    def test_defaults_disabled(self):
        stop = StopConditions()
        assert not stop.any_enabled

    def test_any_enabled_with_delivery_stop(self):
        assert StopConditions(stop_when_all_correct_delivered=True).any_enabled

    def test_any_enabled_with_quiescence_stop(self):
        assert StopConditions(stop_when_quiescent=True).any_enabled

    def test_rejects_negative_grace(self):
        with pytest.raises(ValueError):
            StopConditions(drain_grace_period=-1.0)

    def test_zero_grace_allowed(self):
        assert StopConditions(drain_grace_period=0.0).drain_grace_period == 0.0


class TestSimulationConfig:
    def test_minimal_construction(self):
        config = SimulationConfig(n_processes=3)
        assert config.n_processes == 3
        assert config.tick_interval > 0

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_processes=0)

    def test_rejects_negative_processes(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_processes=-1)

    def test_rejects_zero_tick(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_processes=3, tick_interval=0.0)

    def test_rejects_zero_max_time(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_processes=3, max_time=0.0)

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            SimulationConfig(n_processes=3, seed=1.5)

    def test_with_seed_copies(self):
        config = SimulationConfig(n_processes=3, seed=1)
        other = config.with_seed(9)
        assert other.seed == 9
        assert config.seed == 1
        assert other.n_processes == 3

    def test_with_max_time(self):
        config = SimulationConfig(n_processes=3).with_max_time(42.0)
        assert config.max_time == 42.0

    def test_process_indices(self):
        assert list(SimulationConfig(n_processes=4).process_indices) == [0, 1, 2, 3]

    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4), (7, 4)]
    )
    def test_majority_threshold(self, n, expected):
        assert SimulationConfig(n_processes=n).majority_threshold() == expected

    def test_describe_mentions_n_and_seed(self):
        text = SimulationConfig(n_processes=6, seed=3).describe()
        assert "n=6" in text
        assert "seed=3" in text

    def test_metadata_preserved(self):
        config = SimulationConfig(n_processes=3, metadata={"experiment": "E1"})
        assert config.metadata["experiment"] == "E1"
