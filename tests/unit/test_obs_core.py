"""Unit tests for the observability core: registry semantics, the
enabled/disabled fast flag, Prometheus and JSON exposition, the timeline
sink, alert-rule evaluation, and thread safety of concurrent updates."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import obs
from repro.obs.alerts import AlertRule, evaluate, load_rules
from repro.obs.registry import Counter, Gauge, Histogram


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts from an empty, disabled process registry."""
    obs.reset()
    yield
    obs.reset()
    obs.set_timeline(None)


class TestRegistry:
    def test_disabled_recording_is_a_no_op(self):
        counter = obs.counter("t_total", "help")
        counter.inc(5)
        assert counter.value() == 0.0
        obs.enable()
        counter.inc(5)
        assert counter.value() == 5.0
        obs.disable()
        counter.inc(5)
        assert counter.value() == 5.0

    def test_counter_labels_and_monotonicity(self):
        obs.enable()
        counter = obs.counter("runs_total", "runs", ("engine",))
        counter.inc(engine="reference")
        counter.inc(2, engine="vectorized")
        assert counter.value(engine="reference") == 1.0
        assert counter.value(engine="vectorized") == 2.0
        with pytest.raises(ValueError):
            counter.inc(-1, engine="reference")
        with pytest.raises(ValueError):
            counter.inc(engine="reference", extra="nope")

    def test_gauge_moves_both_ways(self):
        obs.enable()
        gauge = obs.gauge("in_flight", "in flight")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value() == 8.0

    def test_histogram_buckets_cumulate_in_samples(self):
        obs.enable()
        hist = obs.histogram("lat_seconds", "latency",
                             buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        ((values, (cumulative, total, count)),) = hist.samples()
        assert values == ()
        assert cumulative == [1, 2, 3]
        assert count == 4
        assert total == pytest.approx(105.0)

    def test_redeclare_same_name_returns_same_instrument(self):
        first = obs.counter("same_total", "help", ("a",))
        second = obs.counter("same_total", "ignored", ("a",))
        assert first is second
        with pytest.raises(ValueError):
            obs.counter("same_total", "help", ("b",))
        with pytest.raises(ValueError):
            obs.gauge("same_total", "help", ("a",))

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            obs.counter("0bad", "help")
        with pytest.raises(ValueError):
            obs.counter("ok_total", "help", ("bad-label",))

    def test_unlabelled_instruments_expose_zero_children(self):
        obs.counter("zero_total", "z")
        obs.gauge("zero_gauge", "z")
        text = obs.render_prometheus()
        assert "zero_total 0" in text
        assert "zero_gauge 0" in text


class TestThreadSafety:
    def test_concurrent_counter_updates_lose_nothing(self):
        obs.enable()
        counter = obs.counter("hammer_total", "h", ("worker",))
        per_thread = 2000

        def hammer(worker: int) -> None:
            for _ in range(per_thread):
                counter.inc(worker=str(worker % 2))

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(value for _, value in counter.samples())
        assert total == 8 * per_thread

    def test_concurrent_histogram_observations_lose_nothing(self):
        obs.enable()
        hist = obs.histogram("hammer_seconds", "h", buckets=(0.5, 1.5))
        per_thread = 2000

        def hammer() -> None:
            for i in range(per_thread):
                hist.observe(i % 2)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ((_, (cumulative, total, count)),) = hist.samples()
        assert count == 8 * per_thread
        assert cumulative[0] == 8 * per_thread // 2
        assert total == pytest.approx(8 * per_thread // 2)


class TestExposition:
    def _populate(self):
        obs.enable()
        obs.counter("runs_total", "Completed runs.", ("engine",)).inc(
            3, engine="ref\\erence\n")
        obs.gauge("workers", "Active workers.").set(2)
        obs.histogram("cell_seconds", "Cell wall time.",
                      buckets=(1.0, 2.0)).observe(1.5)

    def test_prometheus_text_format(self):
        self._populate()
        text = obs.render_prometheus()
        assert "# HELP runs_total Completed runs." in text
        assert "# TYPE runs_total counter" in text
        # Label values escape backslash and newline.
        assert 'runs_total{engine="ref\\\\erence\\n"} 3' in text
        assert "workers 2" in text
        assert 'cell_seconds_bucket{le="1"} 0' in text
        assert 'cell_seconds_bucket{le="2"} 1' in text
        assert 'cell_seconds_bucket{le="+Inf"} 1' in text
        assert "cell_seconds_sum 1.5" in text
        assert "cell_seconds_count 1" in text
        assert text.endswith("\n")

    def test_json_snapshot_schema(self):
        self._populate()
        data = json.loads(obs.render_json())
        assert data["snapshot_version"] == 1
        metrics = data["metrics"]
        assert metrics["runs_total"]["type"] == "counter"
        assert metrics["runs_total"]["labelnames"] == ["engine"]
        hist = metrics["cell_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"]["+Inf"] == 1
        # Stable serialisation: two renders of the same state agree
        # everywhere except the generation timestamp.
        second = json.loads(obs.render_json())
        second["generated_unix"] = data["generated_unix"]
        assert second == data


class TestTimeline:
    def test_emit_and_phase_write_json_lines(self):
        stream = io.StringIO()
        timeline = obs.Timeline(stream)
        previous = obs.set_timeline(timeline)
        try:
            assert previous is None
            assert obs.timeline_active()
            obs.emit("store.hit", store="s")
            with obs.phase("expand", cells=7):
                pass
            with pytest.raises(RuntimeError):
                with obs.phase("explode"):
                    raise RuntimeError("boom")
        finally:
            obs.set_timeline(previous)
        lines = [json.loads(line) for line
                 in stream.getvalue().splitlines()]
        assert [line["kind"] for line in lines] == ["store.hit", "phase",
                                                    "phase"]
        assert lines[1]["name"] == "expand"
        assert lines[1]["status"] == "ok"
        assert lines[1]["cells"] == 7
        assert lines[1]["wall_seconds"] >= 0
        assert lines[2]["status"] == "error"
        assert "boom" in lines[2]["error"]

    def test_direct_phase_error_records_status_and_reraises(self):
        stream = io.StringIO()
        timeline = obs.Timeline(stream)
        with pytest.raises(KeyError, match="gone"):
            with timeline.phase("load", attempt=2):
                raise KeyError("gone")
        (record,) = [json.loads(line) for line
                     in stream.getvalue().splitlines()]
        assert record["kind"] == "phase"
        assert record["name"] == "load"
        assert record["status"] == "error"
        assert "gone" in record["error"]
        assert record["attempt"] == 2
        assert record["wall_seconds"] >= 0

    def test_direct_phase_keeps_caller_supplied_error_field(self):
        stream = io.StringIO()
        timeline = obs.Timeline(stream)
        with pytest.raises(RuntimeError):
            with timeline.phase("load", error="preset"):
                raise RuntimeError("shadowed")
        (record,) = [json.loads(line) for line
                     in stream.getvalue().splitlines()]
        assert record["status"] == "error"
        assert record["error"] == "preset"

    def test_inactive_timeline_is_transparent(self):
        assert not obs.timeline_active()
        obs.emit("ignored")
        with obs.phase("ignored"):
            pass

    def test_file_sink_appends(self, tmp_path):
        target = tmp_path / "run.jsonl"
        timeline = obs.Timeline(target)
        timeline.emit("a")
        timeline.close()
        timeline = obs.Timeline(target)
        timeline.emit("b")
        timeline.close()
        kinds = [json.loads(line)["kind"]
                 for line in target.read_text().splitlines()]
        assert kinds == ["a", "b"]


class TestAlerts:
    def _snapshot(self):
        obs.enable()
        obs.counter("reclaims_total", "r").inc(30)
        obs.histogram("cell_seconds", "c", buckets=(1.0, 8.0)).observe(6.0)
        obs.counter("cells_total", "c", ("status",)).inc(2, status="failed")
        return obs.snapshot()

    def test_rules_fire_and_exit_code(self):
        report = evaluate(self._snapshot(), (
            AlertRule(name="storm", metric="reclaims_total",
                      op=">", threshold=25),
            AlertRule(name="slow", metric="cell_seconds",
                      quantile=0.99, op=">", threshold=100.0),
            AlertRule(name="failures", metric="cells_total",
                      labels={"status": "failed"}, op=">", threshold=0),
            AlertRule(name="absent", metric="missing_total",
                      op=">", threshold=0),
        ))
        assert [r.rule.name for r in report.firing] == ["storm", "failures"]
        assert report.exit_code == 1
        text = report.describe()
        assert "FIRING" in text and "2 of 4 rule(s) firing" in text

    def test_quantile_estimates_from_buckets(self):
        report = evaluate(self._snapshot(), (
            AlertRule(name="p50", metric="cell_seconds",
                      quantile=0.5, op=">", threshold=0.0),
        ))
        (result,) = report.results
        # One observation at 6.0 lands in the (1, 8] bucket; the linear
        # interpolation estimate falls inside that bucket.
        assert 1.0 < result.value <= 8.0

    def test_if_absent_modes(self):
        rule = {"name": "a", "metric": "missing_total", "op": ">",
                "threshold": 0}
        skip = evaluate({}, (AlertRule(**{**rule, "if_absent": "skip"}),))
        fire = evaluate({}, (AlertRule(**{**rule, "if_absent": "fire"}),))
        zero = evaluate({}, (AlertRule(**rule),))
        assert skip.exit_code == 0
        assert fire.exit_code == 1
        assert zero.exit_code == 0

    def test_load_rules_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "a", "metric": "m_total", "op": ">", "threshold": 1},
        ]}))
        (rule,) = load_rules(path)
        assert rule.name == "a" and rule.threshold == 1.0
        path.write_text(json.dumps([{"name": "b", "metric": "m",
                                     "op": ">", "threshold": 0,
                                     "bogus": 1}]))
        with pytest.raises(ValueError):
            load_rules(path)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            AlertRule(name="a", metric="m", op="~", threshold=0)
        with pytest.raises(ValueError):
            AlertRule(name="a", metric="m", op=">", threshold=0,
                      quantile=2.0)
        with pytest.raises(ValueError):
            AlertRule(name="a", metric="m", op=">", threshold=0,
                      if_absent="explode")

    def test_default_rules_quiet_on_healthy_snapshot(self):
        obs.enable()
        obs.counter("repro_sim_runs_total", "r", ("engine",
                                                  "dispatch_mode")).inc(
            engine="reference", dispatch_mode="per-event")
        report = evaluate(obs.snapshot())
        assert report.exit_code == 0


class TestDeterminismGuards:
    def test_reset_disables_and_clears(self):
        obs.enable()
        obs.counter("x_total", "x").inc()
        obs.reset()
        assert not obs.enabled()
        assert obs.REGISTRY.get("x_total") is None
