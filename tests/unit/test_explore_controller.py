"""Schedule-controller hook points: parity, provenance, replay, crashes."""

from __future__ import annotations

import pytest

from repro.experiments.config import Scenario
from repro.experiments.runner import build_engine
from repro.explore import (
    CRASH,
    DELIVER,
    DROP,
    DefaultScheduleController,
    RecordingController,
    ReplayController,
    ScheduleController,
    hash_decisions,
)
from repro.network.loss import LossSpec
from repro.simulation.engine import CRASH_SENDER
from repro.simulation.tracing import TraceCategory


def _scenario(**overrides) -> Scenario:
    base = dict(
        name="controller-test",
        algorithm="algorithm1",
        n_processes=4,
        seed=7,
        max_time=120.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
    )
    base.update(overrides)
    return Scenario(**base)


class TestDefaultControllerParity:
    """With the default controller, runs are bit-identical to PR 2 paths."""

    @pytest.mark.parametrize("overrides", [
        {},
        {"loss": LossSpec.bernoulli(0.25), "crashes": {3: 4.0}},
        {"algorithm": "algorithm2", "loss": LossSpec.bernoulli(0.15),
         "stop_when_all_correct_delivered": False,
         "stop_when_quiescent": True, "max_time": 250.0},
    ])
    def test_trace_and_metrics_identical(self, overrides):
        scenario = _scenario(**overrides)
        plain = build_engine(scenario).run()
        controlled = build_engine(
            scenario, controller=DefaultScheduleController()
        ).run()
        assert plain.trace.digest() == controlled.trace.digest()
        assert (plain.metrics_summary().as_dict()
                == controlled.metrics_summary().as_dict())
        assert plain.final_time == controlled.final_time

    def test_default_controller_parity_with_hooks(self):
        from repro.simulation.hooks import EngineHook

        class CountingHook(EngineHook):
            def __init__(self):
                self.sends = 0

            def on_send(self, engine, src, payload, now):
                self.sends += 1

        scenario = _scenario(loss=LossSpec.bernoulli(0.2))
        hook_a, hook_b = CountingHook(), CountingHook()
        plain = build_engine(scenario.with_(hooks=(hook_a,))).run()
        controlled = build_engine(
            scenario.with_(hooks=(hook_b,)),
            controller=DefaultScheduleController(),
        ).run()
        assert plain.trace.digest() == controlled.trace.digest()
        assert hook_a.sends == hook_b.sends > 0


class TestScheduleProvenance:
    def test_default_run_records_provenance(self):
        result = build_engine(_scenario()).run()
        assert result.schedule is not None
        assert result.schedule.strategy == "default"
        assert result.schedule.seed == 7
        assert result.schedule.decision_count == 0
        assert result.schedule.decisions == ()

    def test_trace_header_carries_provenance(self):
        result = build_engine(_scenario()).run()
        header = result.trace.header
        assert header["strategy"] == "default"
        assert header["seed"] == 7
        assert header["schedule_hash"] == result.schedule.schedule_hash

    def test_header_written_even_when_tracing_disabled(self):
        result = build_engine(_scenario(trace_enabled=False)).run()
        assert result.trace.header["strategy"] == "default"

    def test_strategy_run_records_decisions(self):
        scenario = _scenario(explore_strategy="random_walk", explore_index=3)
        result = build_engine(scenario).run()
        assert result.schedule.strategy == "random_walk"
        assert result.schedule.schedule_index == 3
        assert result.schedule.decision_count == len(result.schedule.decisions) > 0
        assert result.schedule.schedule_hash == hash_decisions(
            result.schedule.decisions
        )

    def test_hash_is_stable_and_order_sensitive(self):
        decisions = (("deliver", 0.5), ("drop",), ("fd", 3, 1.0))
        assert hash_decisions(decisions) == hash_decisions(list(decisions))
        assert hash_decisions(decisions) != hash_decisions(decisions[::-1])
        assert len(hash_decisions(())) == 16


class _ScriptedController(RecordingController):
    """Plays back a fixed list of choices (tests drive it directly)."""

    def __init__(self, script, fairness_bound=None):
        super().__init__("scripted", 0, fairness_bound=fairness_bound)
        self._script = list(script)

    def _choose_copy(self, engine, src, dst, payload, key, channel, now):
        if self._script:
            return self._script.pop(0)
        return (DELIVER, 0.1)


class TestRecordingController:
    def test_fairness_guard_forces_delivery(self):
        controller = _ScriptedController([(DROP,)] * 10, fairness_bound=2)
        scenario = _scenario()
        engine = build_engine(scenario, controller=controller)
        engine.run()
        # After 2 consecutive drops of the same (channel, key), the guard
        # converts further drop choices into deliveries.
        decisions = list(controller.decisions)
        assert (DROP,) in decisions
        kinds = [d[0] for d in decisions]
        assert DELIVER in kinds

    def test_unknown_decision_rejected(self):
        controller = _ScriptedController([("warp", 1.0)])
        with pytest.raises(ValueError, match="unknown copy decision"):
            build_engine(_scenario(), controller=controller).run()


class TestControllerCrashes:
    def test_crash_sentinel_crashes_sender_mid_broadcast(self):
        # Crash the sender at its second copy: exactly one SEND is recorded
        # for the first broadcast and the victim is marked crashed.
        controller = _ScriptedController([(DELIVER, 0.1), (CRASH,)])
        engine = build_engine(_scenario())
        engine.controller = controller
        result = engine.run()
        crashes = result.trace.filter(category=TraceCategory.CRASH)
        assert crashes and crashes[0].process == 0
        assert crashes[0].detail("forced") is True
        first_time = crashes[0].time
        sends_at_crash = [
            e for e in result.trace.filter(category=TraceCategory.SEND)
            if e.process == 0 and e.time == first_time
        ]
        assert len(sends_at_crash) == 1

    def test_forced_crash_reflected_in_result_crash_schedule(self):
        controller = _ScriptedController([(CRASH,)])
        engine = build_engine(_scenario())
        engine.controller = controller
        result = engine.run()
        assert not result.crash_schedule.is_correct(0)
        assert 0 not in result.correct_indices()

    def test_hook_crash_now_not_folded_into_schedule(self):
        # The impossibility adversary's crash_now must keep the declared
        # schedule: only controller decisions are folded in.
        engine = build_engine(_scenario())
        engine.crash_now(1)
        result = engine.run()
        assert result.crash_schedule.is_correct(1)


class TestReplayController:
    def test_replay_reproduces_strategy_run_bit_identically(self):
        scenario = _scenario(explore_strategy="random_walk", explore_index=5)
        original = build_engine(scenario).run()
        replay = ReplayController(original.schedule.decisions)
        replayed = build_engine(
            scenario.with_(explore_strategy=None), controller=replay
        ).run()
        assert replayed.trace.digest() == original.trace.digest()
        assert (replayed.schedule.schedule_hash
                == original.schedule.schedule_hash)

    def test_truncated_replay_falls_back_to_channel_rng(self):
        scenario = _scenario(explore_strategy="random_walk", explore_index=5)
        original = build_engine(scenario).run()
        truncated = original.schedule.decisions[:4]
        clean = scenario.with_(explore_strategy=None)
        first = build_engine(
            clean, controller=ReplayController(truncated)
        ).run()
        second = build_engine(
            clean, controller=ReplayController(truncated)
        ).run()
        # Deterministic: the fallback draws the scenario's seeded channels.
        assert first.trace.digest() == second.trace.digest()
        assert first.schedule.decision_count >= len(truncated)

    def test_replay_rejects_unknown_decisions(self):
        with pytest.raises(ValueError, match="unknown decision"):
            ReplayController([("warp", 1)])


class TestBaseControllerInterface:
    def test_base_controller_delegates_to_channel(self):
        scenario = _scenario()
        engine = build_engine(scenario)
        controller = ScheduleController()
        channel = engine.network.channel(0, 1)
        outcome = controller.copy_decision(
            engine, 0, 1, object(), "key", channel, 0.0
        )
        assert outcome is None or outcome >= 0.0
        assert controller.decisions == ()
        assert controller.atheta_view(engine, 0, 0.0) is None

    def test_crash_sender_sentinel_identity(self):
        # The sentinel is compared by identity in the engine loop.
        assert CRASH_SENDER is not None
