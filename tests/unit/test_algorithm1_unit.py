"""Unit tests for Algorithm 1 against a fake (recorded) environment.

Each test exercises one branch of the paper's pseudocode without the
simulator: the fake environment records what the process broadcasts and the
test feeds receptions directly.
"""

import pytest

from helpers import FakeEnvironment
from repro.core.algorithm1 import MajorityUrbProcess
from repro.core.messages import AckPayload, MsgPayload, TaggedMessage


def make_process(n=5, **kwargs):
    env = FakeEnvironment(seed=1)
    process = MajorityUrbProcess(env, n_processes=n, **kwargs)
    return process, env


class TestConstruction:
    def test_default_majority_threshold(self):
        process, _ = make_process(n=5)
        assert process.majority_threshold == 3

    def test_explicit_threshold(self):
        process, _ = make_process(n=5, majority_threshold=4)
        assert process.majority_threshold == 4

    def test_rejects_bad_parameters(self):
        env = FakeEnvironment()
        with pytest.raises(ValueError):
            MajorityUrbProcess(env, n_processes=0)
        with pytest.raises(ValueError):
            MajorityUrbProcess(env, n_processes=3, majority_threshold=0)

    def test_name_and_describe(self):
        process, _ = make_process()
        assert process.name == "algorithm1"
        assert "majority=3" in process.describe()


class TestUrbBroadcast:
    def test_adds_tagged_message_to_msg_set(self):
        process, _ = make_process()
        process.urb_broadcast("hello")
        assert process.pending_retransmissions == 1
        message = process.state.msg_set.as_list()[0]
        assert message.content == "hello"

    def test_eager_first_broadcast_sends_msg(self):
        process, env = make_process()
        process.urb_broadcast("hello")
        msgs = env.broadcasts_of_kind("MSG")
        assert len(msgs) == 1
        assert msgs[0].message.content == "hello"

    def test_without_eager_broadcast_nothing_sent(self):
        process, env = make_process(eager_first_broadcast=False)
        process.urb_broadcast("hello")
        assert env.broadcasts == []

    def test_two_broadcasts_get_distinct_tags(self):
        process, _ = make_process()
        process.urb_broadcast("a")
        process.urb_broadcast("b")
        tags = [m.tag for m in process.state.msg_set.as_list()]
        assert len(set(tags)) == 2


class TestOnMsg:
    def test_first_reception_acknowledges(self):
        process, env = make_process()
        message = TaggedMessage("m", 99)
        process.on_receive(MsgPayload(message))
        acks = env.broadcasts_of_kind("ACK")
        assert len(acks) == 1
        assert acks[0].message == message
        assert message in process.state.msg_set

    def test_repeated_reception_reuses_same_ack_tag(self):
        process, env = make_process()
        message = TaggedMessage("m", 99)
        process.on_receive(MsgPayload(message))
        process.on_receive(MsgPayload(message))
        acks = env.broadcasts_of_kind("ACK")
        assert len(acks) == 2
        assert acks[0].ack_tag == acks[1].ack_tag

    def test_different_messages_get_different_ack_tags(self):
        process, env = make_process()
        process.on_receive(MsgPayload(TaggedMessage("a", 1)))
        process.on_receive(MsgPayload(TaggedMessage("b", 2)))
        acks = env.broadcasts_of_kind("ACK")
        assert acks[0].ack_tag != acks[1].ack_tag

    def test_own_message_received_back_is_acknowledged(self):
        # The broadcaster receives its own MSG (loopback) and must ACK it,
        # exactly like any other process.
        process, env = make_process()
        process.urb_broadcast("mine")
        msg_payload = env.broadcasts_of_kind("MSG")[0]
        process.on_receive(msg_payload)
        assert len(env.broadcasts_of_kind("ACK")) == 1


class TestOnAck:
    def test_delivery_requires_majority_of_distinct_acks(self):
        process, env = make_process(n=5)  # majority = 3
        message = TaggedMessage("m", 7)
        process.on_receive(AckPayload(message, ack_tag=1))
        process.on_receive(AckPayload(message, ack_tag=2))
        assert env.deliveries == []
        process.on_receive(AckPayload(message, ack_tag=3))
        assert [m.content for m in env.deliveries] == ["m"]

    def test_duplicate_ack_tags_do_not_count_twice(self):
        process, env = make_process(n=5)
        message = TaggedMessage("m", 7)
        for _ in range(10):
            process.on_receive(AckPayload(message, ack_tag=1))
        assert env.deliveries == []

    def test_delivery_happens_at_most_once(self):
        process, env = make_process(n=3)  # majority = 2
        message = TaggedMessage("m", 7)
        for ack_tag in (1, 2, 3):
            process.on_receive(AckPayload(message, ack_tag=ack_tag))
        assert len(env.deliveries) == 1
        assert len(process.delivery_log) == 1

    def test_fast_delivery_before_receiving_msg(self):
        # The paper's §III remark: ACKs may arrive before the MSG itself;
        # delivery on a majority of ACKs alone is allowed.
        process, env = make_process(n=3)
        message = TaggedMessage("m", 7)
        process.on_receive(AckPayload(message, ack_tag=1))
        process.on_receive(AckPayload(message, ack_tag=2))
        assert len(env.deliveries) == 1
        assert message not in process.state.msg_set

    def test_acks_for_different_messages_are_independent(self):
        process, env = make_process(n=3)
        a, b = TaggedMessage("a", 1), TaggedMessage("b", 2)
        process.on_receive(AckPayload(a, ack_tag=1))
        process.on_receive(AckPayload(b, ack_tag=2))
        assert env.deliveries == []

    def test_delivery_listener_invoked(self):
        process, _ = make_process(n=3)
        seen = []
        process.add_delivery_listener(seen.append)
        message = TaggedMessage("m", 7)
        process.on_receive(AckPayload(message, ack_tag=1))
        process.on_receive(AckPayload(message, ack_tag=2))
        assert seen == ["m"]


class TestTask1:
    def test_tick_rebroadcasts_every_pending_message(self):
        process, env = make_process(eager_first_broadcast=False)
        process.urb_broadcast("a")
        process.urb_broadcast("b")
        process.on_tick()
        msgs = env.broadcasts_of_kind("MSG")
        assert {p.message.content for p in msgs} == {"a", "b"}

    def test_tick_with_empty_msg_set_sends_nothing(self):
        process, env = make_process()
        process.on_tick()
        assert env.broadcasts == []

    def test_messages_are_never_retired(self):
        # Algorithm 1 is non-quiescent: delivery does not remove messages
        # from the retransmission set.
        process, env = make_process(n=3)
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(AckPayload(message, ack_tag=1))
        process.on_receive(AckPayload(message, ack_tag=2))
        assert len(env.deliveries) == 1
        assert process.pending_retransmissions == 1
        process.on_tick()
        assert len(env.broadcasts_of_kind("MSG")) >= 2  # eager + tick


class TestReceiveDispatch:
    def test_unknown_payload_type_raises(self):
        process, _ = make_process()
        with pytest.raises(TypeError):
            process.on_receive("garbage")
