"""Unit tests for the AΘ / AP* oracles and the classic Θ / P detectors."""

import random

import pytest

from repro.failure_detectors.apstar import APStarOracle
from repro.failure_detectors.atheta import AThetaKeepCrashed, AThetaOracle
from repro.failure_detectors.classic import PerfectDetector, ThetaDetector
from repro.failure_detectors.oracle import GroundTruthOracle
from repro.failure_detectors.policies import DisseminationPolicy
from repro.simulation.faults import CrashSchedule


def make_oracle(n=5, crashes=None, seed=0):
    schedule = CrashSchedule.crash_at(n, crashes or {})
    return GroundTruthOracle(schedule, rng=random.Random(seed))


class TestGroundTruthOracle:
    def test_correct_and_faulty(self):
        oracle = make_oracle(4, {3: 5.0})
        assert oracle.is_correct(0)
        assert oracle.is_faulty(3)
        assert oracle.correct_indices() == (0, 1, 2)
        assert oracle.n_correct == 3

    def test_detection_delay(self):
        oracle = make_oracle(4, {3: 5.0})
        assert not oracle.is_detected_crashed(3, 6.0, detection_delay=2.0)
        assert oracle.is_detected_crashed(3, 7.0, detection_delay=2.0)
        assert not oracle.is_detected_crashed(0, 100.0, detection_delay=2.0)

    def test_detected_crash_count(self):
        oracle = make_oracle(5, {3: 5.0, 4: 10.0})
        assert oracle.detected_crash_count(4.0, 0.0) == 0
        assert oracle.detected_crash_count(6.0, 0.0) == 1
        assert oracle.detected_crash_count(20.0, 0.0) == 2

    def test_undetected_indices(self):
        oracle = make_oracle(4, {3: 5.0})
        assert oracle.undetected_indices(10.0, 0.0) == (0, 1, 2)

    def test_labels_are_consistent(self):
        oracle = make_oracle(4, {3: 5.0})
        assert oracle.index_of(oracle.label_of(2)) == 2
        assert len(oracle.labels_of_all()) == 4
        assert len(oracle.labels_of_correct()) == 3

    def test_size_mismatch_rejected(self):
        from repro.failure_detectors.labels import LabelAssigner

        schedule = CrashSchedule.none(3)
        labels = LabelAssigner(4, random.Random(0))
        with pytest.raises(ValueError):
            GroundTruthOracle(schedule, labels=labels)

    def test_describe(self):
        assert "n=5" in make_oracle(5).describe()


class TestAThetaCorrectOnly:
    def test_correct_viewer_sees_all_correct_labels(self):
        oracle = make_oracle(5, {4: 3.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        view = atheta.view(0, 10.0)
        assert view.labels() == oracle.labels_of_correct()

    def test_number_equals_correct_count(self):
        oracle = make_oracle(5, {4: 3.0, 3: 3.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        view = atheta.view(0, 0.0)
        assert all(pair.number == 3 for pair in view)

    def test_faulty_viewer_sees_empty_view(self):
        oracle = make_oracle(5, {4: 3.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        assert atheta.view(4, 1.0).is_empty()

    def test_faulty_labels_never_present(self):
        oracle = make_oracle(5, {4: 3.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        assert oracle.label_of(4) not in atheta.view(0, 100.0)

    def test_learn_delay_staggers_visibility(self):
        oracle = make_oracle(5)
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY,
                              learn_delay=10.0, rng=random.Random(1))
        early = atheta.view(0, 0.0)
        late = atheta.view(0, 20.0)
        assert len(early) < len(late)
        # A process always knows its own label immediately.
        assert oracle.label_of(0) in early
        assert late.labels() == oracle.labels_of_correct()

    def test_view_is_stable_once_converged(self):
        oracle = make_oracle(4, {3: 2.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        assert atheta.view(1, 50.0) == atheta.view(1, 500.0)

    def test_converged_view_helper(self):
        oracle = make_oracle(4, {3: 2.0})
        atheta = AThetaOracle(oracle)
        converged = atheta.converged_view()
        assert converged.labels() == oracle.labels_of_correct()

    def test_works_without_correct_majority(self):
        # 1 correct process out of 5: the prescient policy must still output
        # exactly that process's label with number 1 at correct viewers.
        oracle = make_oracle(5, {1: 1.0, 2: 1.0, 3: 1.0, 4: 1.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        view = atheta.view(0, 10.0)
        assert view.labels() == frozenset({oracle.label_of(0)})
        assert view.number_for(oracle.label_of(0)) == 1


class TestAThetaAllProcesses:
    def test_initial_number_is_n(self):
        oracle = make_oracle(5, {4: 10.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES,
                              detection_delay=2.0)
        view = atheta.view(0, 0.0)
        assert len(view) == 5
        assert all(pair.number == 5 for pair in view)

    def test_crashed_label_removed_after_detection(self):
        oracle = make_oracle(5, {4: 10.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES,
                              detection_delay=2.0)
        assert oracle.label_of(4) in atheta.view(0, 11.0)
        assert oracle.label_of(4) not in atheta.view(0, 12.5)

    def test_number_shrinks_after_detection(self):
        oracle = make_oracle(5, {4: 10.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES,
                              detection_delay=2.0)
        view = atheta.view(0, 20.0)
        assert all(pair.number == 4 for pair in view)

    def test_faulty_viewer_also_sees_labels(self):
        oracle = make_oracle(5, {4: 10.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES)
        assert not atheta.view(4, 1.0).is_empty()

    def test_keep_crashed_variant_never_removes(self):
        oracle = make_oracle(5, {4: 10.0})
        atheta = AThetaKeepCrashed(oracle, policy=DisseminationPolicy.ALL_PROCESSES,
                                   detection_delay=1.0)
        assert oracle.label_of(4) in atheta.view(0, 500.0)


class TestAThetaOwnOnly:
    def test_only_own_label(self):
        oracle = make_oracle(4)
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.OWN_ONLY)
        view = atheta.view(2, 5.0)
        assert view.labels() == frozenset({oracle.label_of(2)})
        assert view.number_for(oracle.label_of(2)) == 1


class TestAPStar:
    def test_crashed_pairs_removed(self):
        oracle = make_oracle(5, {4: 10.0})
        apstar = APStarOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES,
                              detection_delay=3.0)
        assert oracle.label_of(4) in apstar.view(0, 12.0)
        assert oracle.label_of(4) not in apstar.view(0, 13.5)

    def test_eventually_exactly_correct_pairs(self):
        oracle = make_oracle(5, {3: 1.0, 4: 2.0})
        apstar = APStarOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES,
                              detection_delay=1.0)
        view = apstar.view(0, 50.0)
        assert view.labels() == oracle.labels_of_correct()
        assert all(pair.number == 3 for pair in view)

    def test_correct_only_policy_matches_atheta(self):
        oracle = make_oracle(5, {4: 1.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        apstar = APStarOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        assert atheta.view(0, 30.0) == apstar.view(0, 30.0)

    def test_invalid_parameters(self):
        oracle = make_oracle(3)
        with pytest.raises(ValueError):
            APStarOracle(oracle, detection_delay=-1.0)
        with pytest.raises(ValueError):
            AThetaOracle(oracle, learn_delay=-1.0)

    def test_index_validation(self):
        oracle = make_oracle(3)
        apstar = APStarOracle(oracle)
        with pytest.raises(IndexError):
            apstar.view(7, 0.0)

    def test_describe(self):
        oracle = make_oracle(3)
        assert "policy=correct_only" in APStarOracle(oracle).describe()


class TestKnowerSet:
    def test_correct_only_knowers_are_correct(self):
        oracle = make_oracle(5, {3: 1.0, 4: 2.0})
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.CORRECT_ONLY)
        for index in oracle.correct_indices():
            knowers = atheta.knower_set(oracle.label_of(index), horizon=100.0)
            assert knowers <= set(oracle.correct_indices())
            assert index in knowers

    def test_all_policy_knowers_include_everyone(self):
        oracle = make_oracle(4)
        atheta = AThetaOracle(oracle, policy=DisseminationPolicy.ALL_PROCESSES)
        knowers = atheta.knower_set(oracle.label_of(1), horizon=100.0)
        assert knowers == set(range(4))


class TestClassicDetectors:
    def test_theta_trusts_alive_processes(self):
        oracle = make_oracle(4, {3: 5.0})
        theta = ThetaDetector(oracle, detection_delay=1.0)
        assert theta.trusted(0, 0.0) == frozenset({0, 1, 2, 3})
        assert theta.trusted(0, 7.0) == frozenset({0, 1, 2})

    def test_theta_always_contains_a_correct_process(self):
        oracle = make_oracle(4, {2: 1.0, 3: 2.0})
        theta = ThetaDetector(oracle, detection_delay=0.5)
        for t in (0.0, 1.0, 2.0, 5.0, 50.0):
            assert theta.trusted(0, t) & set(oracle.correct_indices())

    def test_perfect_never_suspects_correct(self):
        oracle = make_oracle(4, {3: 5.0})
        perfect = PerfectDetector(oracle, detection_delay=2.0)
        for t in (0.0, 10.0, 100.0):
            assert not perfect.suspected(0, t) & set(oracle.correct_indices())

    def test_perfect_eventually_suspects_crashed(self):
        oracle = make_oracle(4, {3: 5.0})
        perfect = PerfectDetector(oracle, detection_delay=2.0)
        assert 3 not in perfect.suspected(0, 6.0)
        assert 3 in perfect.suspected(0, 7.5)

    def test_alive_is_complement(self):
        oracle = make_oracle(4, {3: 5.0})
        perfect = PerfectDetector(oracle)
        assert perfect.alive(0, 10.0) == frozenset({0, 1, 2})

    def test_invalid_delay(self):
        oracle = make_oracle(3)
        with pytest.raises(ValueError):
            ThetaDetector(oracle, detection_delay=-1.0)
        with pytest.raises(ValueError):
            PerfectDetector(oracle, detection_delay=-1.0)

    def test_index_validation(self):
        oracle = make_oracle(3)
        with pytest.raises(IndexError):
            ThetaDetector(oracle).trusted(9, 0.0)
        with pytest.raises(IndexError):
            PerfectDetector(oracle).suspected(9, 0.0)


class TestDisseminationPolicy:
    def test_from_string(self):
        assert DisseminationPolicy.from_string("correct_only") is DisseminationPolicy.CORRECT_ONLY

    def test_from_enum_is_identity(self):
        assert DisseminationPolicy.from_string(DisseminationPolicy.OWN_ONLY) is DisseminationPolicy.OWN_ONLY

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            DisseminationPolicy.from_string("psychic")

    def test_safety_flag(self):
        assert DisseminationPolicy.CORRECT_ONLY.is_safe_without_majority
        assert not DisseminationPolicy.ALL_PROCESSES.is_safe_without_majority
