"""Explorer end-to-end: clean protocols stay clean, broken ones are caught,
counterexamples dedup, shrink, serialise and replay."""

from __future__ import annotations

import pytest

from repro.analysis.properties import violation_signature
from repro.experiments.config import Scenario
from repro.explore import (
    DELIVER,
    Explorer,
    RecordingController,
    explore,
    load_counterexample,
    replay_counterexample,
    replay_decisions,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.network.delay import DelaySpec
from repro.network.loss import LossSpec
from repro.registry import StrategySpec, strategies


def _scenario(**overrides) -> Scenario:
    base = dict(
        name="explorer-test",
        algorithm="algorithm1",
        n_processes=4,
        seed=0,
        max_time=150.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
    )
    base.update(overrides)
    return Scenario(**base)


def _broken_scenario(**overrides) -> Scenario:
    return _scenario(algorithm="algorithm1_noretx", max_time=60.0, **overrides)


class TestExplorerCleanProtocols:
    def test_algorithm1_random_walk_finds_nothing(self):
        report = explore(_scenario(), "random_walk", budget=12, shrink=False)
        assert report.ok
        assert report.schedules_run == 12
        assert not report.counterexamples
        assert all(count == 0 for count in report.property_violations.values())

    def test_algorithm2_pct_finds_nothing(self):
        scenario = _scenario(algorithm="algorithm2",
                             stop_when_all_correct_delivered=False,
                             stop_when_quiescent=True, max_time=250.0)
        report = explore(scenario, "pct", budget=8, shrink=False)
        assert report.ok

    def test_report_describe_mentions_throughput(self):
        report = explore(_scenario(), "random_walk", budget=4, shrink=False)
        text = report.describe()
        assert "schedules/s" in text
        assert "Validity: OK" in text


class TestExplorerCatchesBrokenProtocol:
    def test_broken_variant_is_caught_and_shrunk(self):
        report = explore(_broken_scenario(), "random_walk", budget=30)
        assert not report.ok
        assert report.counterexamples
        counterexample = report.counterexamples[0]
        assert counterexample.signature
        assert counterexample.shrunk_decisions is not None
        assert counterexample.shrunk_verified
        assert len(counterexample.shrunk_decisions) <= len(
            counterexample.decisions)

    def test_shrunk_counterexample_replays_to_same_violation(self):
        report = explore(_broken_scenario(), "random_walk", budget=30)
        counterexample = report.counterexamples[0]
        _, verdict = replay_decisions(
            counterexample.scenario, counterexample.shrunk_decisions)
        assert violation_signature(verdict) == counterexample.signature

    def test_property_stats_count_unique_violations(self):
        report = explore(_broken_scenario(), "random_walk", budget=30,
                         shrink=False)
        total_violating = sum(
            1 for c in report.counterexamples)
        assert total_violating > 0
        assert sum(report.property_violations.values()) >= total_violating


class TestExplorerMechanics:
    def test_enumerative_budget_is_capped(self):
        scenario = _scenario(metadata={"explore_enum_points": 2})
        report = explore(scenario, "delay_bound", budget=100, shrink=False)
        assert report.budget == 4
        assert report.schedules_run == 4
        assert report.unique_schedules == 4

    def test_duplicate_schedules_deduplicated(self):
        class ConstantController(RecordingController):
            def __init__(self):
                super().__init__("constant", 0)

            def _choose_copy(self, engine, src, dst, payload, key, channel,
                             now):
                return (DELIVER, 0.2)

        spec = StrategySpec(
            name="constant",
            factory=lambda scenario, index: ConstantController(),
            description="every index produces the same schedule",
        )
        with strategies.scoped(spec):
            report = explore(_scenario(), "constant", budget=5, shrink=False)
        assert report.schedules_run == 5
        assert report.unique_schedules == 1
        assert report.duplicate_schedules == 4

    def test_parallel_equals_sequential(self):
        scenario = _broken_scenario()
        sequential = explore(scenario, "random_walk", budget=8, shrink=False)
        parallel = explore(scenario, "random_walk", budget=8, shrink=False,
                           parallel=2)
        assert parallel.parallel == 2
        assert (sorted(c.schedule_hash for c in sequential.counterexamples)
                == sorted(c.schedule_hash for c in parallel.counterexamples))

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Explorer(_scenario(), budget=0)

    def test_trace_disabled_scenario_rejected(self):
        # With tracing off every property checker passes vacuously, so the
        # explorer refuses to report a meaningless "OK".
        with pytest.raises(ValueError, match="trace_enabled"):
            Explorer(_scenario(trace_enabled=False))

    def test_injected_crash_still_stops_early(self):
        # A controller-injected crash removes its victim from the effective
        # correct set; the stop_when_all_correct_delivered predicate must
        # consult that set, not the declared schedule, or the run would
        # spin to the horizon waiting for the dead process's deliveries.
        from repro.experiments.runner import build_engine

        # crash_points schedule 4 with steps=2: victim is process 2 (not
        # the broadcaster), crashed at its first send — it never delivers,
        # but the three surviving processes do.
        scenario = _scenario(
            metadata={"explore_crash_steps": 2},
            explore_strategy="crash_points", explore_index=4,
        )
        result = build_engine(scenario).run()
        assert not result.crash_schedule.is_correct(2)
        assert result.stop_reason == "all correct delivered"
        assert result.final_time < scenario.max_time

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Explorer(_scenario(), strategy="definitely-not-registered")

    def test_empty_schedule_space_raises(self):
        scenario = _scenario(algorithm="algorithm2",
                             stop_when_all_correct_delivered=False,
                             stop_when_quiescent=True)
        with pytest.raises(ValueError, match="crash_points requires"):
            Explorer(scenario, strategy="crash_points").run()


class TestArtifacts:
    def test_artifacts_written_and_replayable(self, tmp_path):
        report = explore(_broken_scenario(), "random_walk", budget=30,
                         artifacts_dir=tmp_path)
        counterexample = report.counterexamples[0]
        assert counterexample.artifact_path is not None
        assert counterexample.artifact_path.exists()

        data = load_counterexample(counterexample.artifact_path)
        assert data["schedule_hash"] == counterexample.schedule_hash
        assert data["decisions"] == counterexample.decisions
        assert isinstance(data["scenario"], Scenario)

        _, verdict = replay_counterexample(counterexample.artifact_path)
        assert violation_signature(verdict) == counterexample.signature

    def test_full_trace_replay_from_artifact(self, tmp_path):
        report = explore(_broken_scenario(), "random_walk", budget=30,
                         artifacts_dir=tmp_path)
        counterexample = report.counterexamples[0]
        _, verdict = replay_counterexample(
            counterexample.artifact_path, shrunk=False)
        assert violation_signature(verdict) == counterexample.signature


class TestScenarioSerialization:
    def test_round_trip_preserves_fields(self):
        scenario = _scenario(
            crashes={3: 2.5},
            loss=LossSpec.bernoulli(0.3),
            delay=DelaySpec.exponential(mean=0.4, cap=2.0),
            workload="burst",
            metadata={"burst_size": 3, "explore_drop_probability": 0.4},
        )
        rebuilt = scenario_from_dict(scenario_to_dict(scenario))
        assert rebuilt == scenario

    def test_rejects_unserialisable_scenarios(self):
        from repro.simulation.hooks import EngineHook

        with pytest.raises(ValueError, match="hooks"):
            scenario_to_dict(_scenario(hooks=(EngineHook(),)))
        with pytest.raises(ValueError, match="custom"):
            scenario_to_dict(_scenario(
                loss=LossSpec(kind="custom",
                              factory=lambda src, dst, rng: None)))

    def test_rejects_inline_workloads(self):
        from repro.workloads.generators import SingleBroadcast

        with pytest.raises(ValueError, match="named"):
            scenario_to_dict(_scenario(workload=SingleBroadcast(0, 0.0)))
