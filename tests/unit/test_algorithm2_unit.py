"""Unit tests for Algorithm 2 against a fake environment with scripted
failure-detector views."""

from helpers import FakeEnvironment
from repro.core.algorithm2 import QuiescentUrbProcess
from repro.core.messages import LabeledAckPayload, MsgPayload, TaggedMessage
from repro.failure_detectors.base import FailureDetectorView, FDPair
from repro.failure_detectors.labels import Label

L1, L2, L3 = Label(101), Label(102), Label(103)


def view(*pairs) -> FailureDetectorView:
    return FailureDetectorView([FDPair(label, number) for label, number in pairs])


def make_process(atheta=None, apstar=None, **kwargs):
    env = FakeEnvironment(
        seed=2,
        atheta_view=atheta if atheta is not None else view((L1, 2), (L2, 2)),
        apstar_view=apstar if apstar is not None else view((L1, 2), (L2, 2)),
    )
    return QuiescentUrbProcess(env, **kwargs), env


class TestUrbBroadcast:
    def test_message_enters_msg_set(self):
        process, _ = make_process()
        process.urb_broadcast("hello")
        assert process.pending_retransmissions == 1

    def test_eager_broadcast_sends_msg(self):
        process, env = make_process()
        process.urb_broadcast("hello")
        assert len(env.broadcasts_of_kind("MSG")) == 1


class TestOnMsg:
    def test_ack_carries_current_atheta_labels(self):
        process, env = make_process(atheta=view((L1, 2), (L2, 2)))
        process.on_receive(MsgPayload(TaggedMessage("m", 1)))
        ack = env.broadcasts_of_kind("ACK")[0]
        assert isinstance(ack, LabeledAckPayload)
        assert ack.labels == frozenset({L1, L2})

    def test_repeated_msg_reuses_ack_tag_with_fresh_labels(self):
        process, env = make_process(atheta=view((L1, 2)))
        message = TaggedMessage("m", 1)
        process.on_receive(MsgPayload(message))
        # AΘ view grows between the two receptions (converging detector).
        env.atheta_view = view((L1, 2), (L2, 2))
        process.on_receive(MsgPayload(message))
        acks = env.broadcasts_of_kind("ACK")
        assert acks[0].ack_tag == acks[1].ack_tag
        assert acks[0].labels == frozenset({L1})
        assert acks[1].labels == frozenset({L1, L2})

    def test_already_delivered_message_not_readded_to_msg_set(self):
        process, env = make_process(atheta=view((L1, 1)))
        message = TaggedMessage("m", 1)
        # Deliver via one ACK whose counter reaches number=1.
        process.on_receive(LabeledAckPayload(message, 50, frozenset({L1})))
        assert len(env.deliveries) == 1
        # Receiving the MSG afterwards must not re-add it for retransmission,
        # but it must still be acknowledged (line 8-12 vs 13-21).
        process.on_receive(MsgPayload(message))
        assert message not in process.state.msg_set
        assert len(env.broadcasts_of_kind("ACK")) == 1


class TestDeliveryCondition:
    def test_delivery_when_some_label_reaches_number(self):
        process, env = make_process(atheta=view((L1, 2), (L2, 2)))
        message = TaggedMessage("m", 1)
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        assert env.deliveries == []
        process.on_receive(LabeledAckPayload(message, 11, frozenset({L1})))
        assert [m.content for m in env.deliveries] == ["m"]

    def test_acks_without_labels_never_trigger_delivery(self):
        process, env = make_process(atheta=view((L1, 2)))
        message = TaggedMessage("m", 1)
        for ack_tag in range(5):
            process.on_receive(LabeledAckPayload(message, ack_tag, frozenset()))
        assert env.deliveries == []

    def test_empty_atheta_view_never_delivers(self):
        process, env = make_process(atheta=FailureDetectorView.empty())
        message = TaggedMessage("m", 1)
        for ack_tag in range(5):
            process.on_receive(LabeledAckPayload(message, ack_tag, frozenset({L1})))
        assert env.deliveries == []

    def test_at_most_once_delivery(self):
        process, env = make_process(atheta=view((L1, 1)))
        message = TaggedMessage("m", 1)
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        process.on_receive(LabeledAckPayload(message, 11, frozenset({L1})))
        assert len(env.deliveries) == 1

    def test_strict_equality_mode_requires_exact_count(self):
        process, env = make_process(atheta=view((L1, 2)), strict_equality=True)
        message = TaggedMessage("m", 1)
        # three distinct ackers -> counter overshoots 2 between checks only if
        # the check misses the ==2 instant; since the check runs per ACK it
        # still fires exactly at the second ACK.
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        process.on_receive(LabeledAckPayload(message, 11, frozenset({L1})))
        assert len(env.deliveries) == 1

    def test_plain_ack_payload_treated_as_unlabeled(self):
        # Algorithm 2 tolerates Algorithm 1-style ACKs (no labels): they count
        # as ackers but cannot satisfy any (label, number) pair.
        from repro.core.messages import AckPayload

        process, env = make_process(atheta=view((L1, 1)))
        message = TaggedMessage("m", 1)
        process.on_receive(AckPayload(message, 10))
        assert env.deliveries == []
        assert process.state.distinct_ack_count(message) == 1


class TestRetireCondition:
    def test_retire_after_full_coverage(self):
        process, env = make_process(
            atheta=view((L1, 2), (L2, 2)), apstar=view((L1, 2), (L2, 2))
        )
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        # Two distinct ackers, both reporting both correct labels.
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1, L2})))
        process.on_receive(LabeledAckPayload(message, 11, frozenset({L1, L2})))
        assert len(env.deliveries) == 1
        process.on_tick()
        assert process.pending_retransmissions == 0
        assert process.retired_count == 1
        assert env.retirements == [message]

    def test_no_retire_before_delivery(self):
        process, env = make_process(
            atheta=FailureDetectorView.empty(), apstar=view((L1, 1))
        )
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        # AP* condition holds but the message was never delivered (empty AΘ),
        # so it must stay in MSG.
        process.on_tick()
        assert process.pending_retransmissions == 1

    def test_no_retire_when_counts_insufficient(self):
        process, env = make_process(atheta=view((L1, 1)), apstar=view((L1, 2)))
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        assert len(env.deliveries) == 1
        process.on_tick()
        assert process.pending_retransmissions == 1

    def test_no_retire_with_empty_apstar(self):
        process, env = make_process(atheta=view((L1, 1)),
                                    apstar=FailureDetectorView.empty())
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        process.on_tick()
        assert process.pending_retransmissions == 1

    def test_retire_disabled_keeps_retransmitting(self):
        process, env = make_process(
            atheta=view((L1, 1)), apstar=view((L1, 1)), retire_enabled=False
        )
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        process.on_tick()
        assert process.pending_retransmissions == 1
        assert process.retired_count == 0

    def test_strict_retire_requires_exact_label_set(self):
        process, env = make_process(
            atheta=view((L1, 1)), apstar=view((L1, 1)), strict_equality=True
        )
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        # The acker reports an extra label L2 that AP* does not list: strict
        # equality of label sets fails, so no retirement.
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1, L2})))
        process.on_tick()
        assert process.pending_retransmissions == 1

    def test_robust_retire_tolerates_extra_labels(self):
        process, env = make_process(
            atheta=view((L1, 1)), apstar=view((L1, 1)), strict_equality=False
        )
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1, L2})))
        process.on_tick()
        assert process.pending_retransmissions == 0

    def test_tick_broadcasts_before_retiring(self):
        # Paper order: line 54 broadcast, then line 55 check — the retiring
        # tick still sends one last copy.
        process, env = make_process(atheta=view((L1, 1)), apstar=view((L1, 1)))
        process.urb_broadcast("m")
        message = process.state.msg_set.as_list()[0]
        process.on_receive(LabeledAckPayload(message, 10, frozenset({L1})))
        before = len(env.broadcasts_of_kind("MSG"))
        process.on_tick()
        assert len(env.broadcasts_of_kind("MSG")) == before + 1
        assert process.pending_retransmissions == 0


class TestDescribe:
    def test_describe_mentions_mode(self):
        process, _ = make_process(strict_equality=True, retire_enabled=False)
        text = process.describe()
        assert "strict" in text
        assert "no-retire" in text
