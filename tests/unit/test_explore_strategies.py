"""Built-in exploration strategies: determinism, soundness, enumeration."""

from __future__ import annotations

import pytest

from repro.experiments.config import Scenario
from repro.experiments.runner import build_engine
from repro.explore import CRASH, DELIVER, DROP, FD
from repro.explore.strategies import (
    crash_budget,
    crash_point_schedule_count,
    delay_bound_schedule_count,
    delay_lattice,
)
from repro.network.delay import DelaySpec
from repro.registry import UnknownComponentError, strategies, strategy_names


def _scenario(**overrides) -> Scenario:
    base = dict(
        name="strategy-test",
        algorithm="algorithm1",
        n_processes=4,
        seed=11,
        max_time=120.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
    )
    base.update(overrides)
    return Scenario(**base)


def _run(scenario: Scenario):
    return build_engine(scenario).run()


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert set(strategy_names()) >= {
            "random_walk", "pct", "delay_bound", "crash_points",
        }

    def test_enumerative_flags(self):
        assert not strategies.get("random_walk").enumerative
        assert not strategies.get("pct").enumerative
        assert strategies.get("delay_bound").enumerative
        assert strategies.get("crash_points").enumerative
        assert strategies.get("delay_bound").schedule_count is not None

    def test_scenario_validates_strategy_name(self):
        with pytest.raises(UnknownComponentError):
            _scenario(explore_strategy="nope")
        with pytest.raises(ValueError):
            _scenario(explore_strategy="random_walk", explore_index=-1)


class TestDelayLattice:
    def test_uniform_covers_extremes(self):
        lattice = delay_lattice(_scenario(delay=DelaySpec.uniform(0.1, 0.7)))
        assert lattice[0] == pytest.approx(0.1)
        assert lattice[-1] == pytest.approx(0.7)
        assert list(lattice) == sorted(lattice)

    def test_fixed_is_single_point(self):
        assert delay_lattice(_scenario(delay=DelaySpec.fixed(0.3))) == (0.3,)

    def test_exponential_respects_cap(self):
        lattice = delay_lattice(
            _scenario(delay=DelaySpec.exponential(mean=0.4, cap=2.0)))
        assert lattice[-1] == pytest.approx(2.0)


class TestCrashBudget:
    def test_majority_algorithm_budget(self):
        assert crash_budget(_scenario()) == 1              # n=4 -> t <= 1
        assert crash_budget(_scenario(n_processes=5)) == 2
        assert crash_budget(_scenario(crashes={3: 1.0})) == 0

    def test_detector_algorithms_get_no_injected_crashes(self):
        scenario = _scenario(algorithm="algorithm2",
                             stop_when_all_correct_delivered=False,
                             stop_when_quiescent=True)
        assert crash_budget(scenario) == 0

    def test_non_majority_algorithm_keeps_one_correct(self):
        assert crash_budget(_scenario(algorithm="best_effort")) == 3


class TestRandomWalk:
    def test_same_index_is_deterministic(self):
        scenario = _scenario(explore_strategy="random_walk", explore_index=2)
        first, second = _run(scenario), _run(scenario)
        assert first.schedule.decisions == second.schedule.decisions
        assert first.trace.digest() == second.trace.digest()

    def test_different_indices_differ(self):
        hashes = {
            _run(_scenario(explore_strategy="random_walk",
                           explore_index=i)).schedule.schedule_hash
            for i in range(4)
        }
        assert len(hashes) > 1

    def test_crash_injection_respects_budget(self):
        # Aggressive crash probability: across many schedules, no run may
        # ever inject more crashes than the majority assumption allows.
        scenario = _scenario(
            metadata={"explore_crash_probability": 0.5},
        )
        for index in range(6):
            result = _run(scenario.with_(explore_strategy="random_walk",
                                         explore_index=index))
            crashes = sum(
                1 for d in result.schedule.decisions if d[0] == CRASH)
            assert crashes <= 1
            assert result.crash_schedule.n_faulty <= 1

    def test_no_crash_decisions_for_detector_algorithms(self):
        scenario = _scenario(
            algorithm="algorithm2",
            stop_when_all_correct_delivered=False,
            stop_when_quiescent=True,
            max_time=250.0,
            metadata={"explore_crash_probability": 0.9},
            explore_strategy="random_walk",
        )
        result = _run(scenario)
        assert all(d[0] != CRASH for d in result.schedule.decisions)

    def test_fd_staleness_opt_in_and_replayable(self):
        scenario = _scenario(
            algorithm="algorithm2",
            stop_when_all_correct_delivered=False,
            stop_when_quiescent=True,
            max_time=300.0,
            metadata={"explore_fd_stale_probability": 0.3},
            explore_strategy="random_walk",
            explore_index=1,
        )
        result = _run(scenario)
        fd_decisions = [d for d in result.schedule.decisions if d[0] == FD]
        assert fd_decisions, "expected at least one stale FD query"
        # Staleness bounded by the default (the FD detection delay).
        assert all(d[2] == scenario.fd_detection_delay for d in fd_decisions)

        from repro.explore import replay_decisions

        simulation, _ = replay_decisions(scenario, result.schedule.decisions)
        assert simulation.trace.digest() == result.trace.digest()


class TestPct:
    def test_pct_only_reorders(self):
        scenario = _scenario(explore_strategy="pct", explore_index=0)
        result = _run(scenario)
        kinds = {d[0] for d in result.schedule.decisions}
        assert kinds == {DELIVER}

    def test_pct_delays_bounded_by_lattice_span(self):
        scenario = _scenario(explore_strategy="pct", explore_index=1)
        lattice = delay_lattice(scenario)
        result = _run(scenario)
        delays = [d[1] for d in result.schedule.decisions]
        assert delays
        assert min(delays) >= lattice[0]
        assert max(delays) <= lattice[-1] + 1e-9

    def test_pct_indices_give_distinct_orderings(self):
        hashes = {
            _run(_scenario(explore_strategy="pct",
                           explore_index=i)).schedule.schedule_hash
            for i in range(3)
        }
        assert len(hashes) == 3


class TestDelayBoundEnumeration:
    def test_schedule_count(self):
        scenario = _scenario(metadata={"explore_enum_points": 3})
        assert delay_bound_schedule_count(scenario) == 8

    def test_all_schedules_distinct(self):
        scenario = _scenario(metadata={"explore_enum_points": 3})
        hashes = {
            _run(scenario.with_(explore_strategy="delay_bound",
                                explore_index=i)).schedule.schedule_hash
            for i in range(8)
        }
        assert len(hashes) == 8

    def test_out_of_range_index_rejected(self):
        scenario = _scenario(metadata={"explore_enum_points": 2},
                             explore_strategy="delay_bound", explore_index=99)
        with pytest.raises(ValueError, match="out of range"):
            build_engine(scenario)


class TestCrashPointEnumeration:
    def test_schedule_count(self):
        scenario = _scenario(metadata={"explore_crash_steps": 5})
        assert crash_point_schedule_count(scenario) == 20   # 4 victims x 5

    def test_each_schedule_crashes_its_victim(self):
        scenario = _scenario(metadata={"explore_crash_steps": 2})
        result = _run(scenario.with_(explore_strategy="crash_points",
                                     explore_index=3))   # victim 1, step 1
        assert not result.crash_schedule.is_correct(1)
        assert sum(1 for d in result.schedule.decisions if d[0] == CRASH) == 1

    def test_rejected_for_detector_algorithms(self):
        scenario = _scenario(
            algorithm="algorithm2",
            stop_when_all_correct_delivered=False,
            stop_when_quiescent=True,
        )
        assert crash_point_schedule_count(scenario) == 0
        with pytest.raises(ValueError, match="crash_points requires"):
            strategies.get("crash_points").factory(scenario, 0)

    def test_loss_and_delay_delegate_to_channels(self):
        # With no configured loss, every non-crash decision is a delivery
        # drawn from the channel's own delay model.
        scenario = _scenario(metadata={"explore_crash_steps": 2},
                             explore_strategy="crash_points", explore_index=0)
        result = _run(scenario)
        kinds = {d[0] for d in result.schedule.decisions}
        assert DROP not in kinds
