"""Metrics federation: snapshot flushing, envelope versioning, merge
semantics (counter sums, histogram bucket sums, per-worker gauges) and
the federated exposition body."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import federation
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.set_timeline(None)
    yield
    obs.reset()
    obs.set_timeline(None)


def _registry_with(counter=0, gauge=None, observe=()):
    obs.enable()  # recording no-ops while the obs flag is off
    registry = MetricsRegistry()
    if counter:
        registry.counter("cells_total", "Cells.", ("outcome",)).inc(
            counter, outcome="executed")
    if gauge is not None:
        registry.gauge("queue_depth", "Depth.").set(gauge)
    histogram = registry.histogram("cell_seconds", "Seconds.",
                                   buckets=(0.1, 1.0))
    for value in observe:
        histogram.observe(value)
    return registry


class TestSnapshotFiles:
    def test_write_read_roundtrip(self, tmp_path):
        obs.enable()
        registry = _registry_with(counter=3)
        path = federation.write_snapshot(tmp_path, "w1", seq=2,
                                         registry=registry)
        assert path == tmp_path / "w1" / "metrics.json"
        envelopes = federation.read_snapshots(tmp_path)
        assert set(envelopes) == {"w1"}
        envelope = envelopes["w1"]
        assert envelope["federation_version"] == 1
        assert envelope["seq"] == 2
        assert envelope["snapshot"]["snapshot_version"] == 1

    def test_read_skips_malformed_files(self, tmp_path):
        (tmp_path / "bad").mkdir(parents=True)
        (tmp_path / "bad" / "metrics.json").write_text("{half a doc")
        assert federation.read_snapshots(tmp_path) == {}

    def test_read_rejects_foreign_version(self, tmp_path):
        (tmp_path / "w1").mkdir(parents=True)
        (tmp_path / "w1" / "metrics.json").write_text(
            json.dumps({"federation_version": 99, "worker": "w1",
                        "snapshot": {}}))
        with pytest.raises(ValueError, match="federation_version"):
            federation.read_snapshots(tmp_path)

    def test_missing_dir_is_empty(self, tmp_path):
        assert federation.read_snapshots(tmp_path / "nope") == {}

    def test_flusher_writes_final_snapshot_on_stop(self, tmp_path):
        obs.enable()
        registry = _registry_with(counter=1)
        flusher = federation.SnapshotFlusher(tmp_path, "w1",
                                             interval=60.0,
                                             registry=registry)
        flusher.start()
        flusher.stop()
        envelopes = federation.read_snapshots(tmp_path)
        assert "w1" in envelopes
        metrics = envelopes["w1"]["snapshot"]["metrics"]
        assert metrics["cells_total"]["samples"][0]["value"] == 1


class TestMerge:
    def _envelopes(self, tmp_path, specs):
        obs.enable()
        for worker, registry in specs.items():
            federation.write_snapshot(tmp_path, worker, registry=registry)
        return federation.read_snapshots(tmp_path)

    def test_counters_sum_into_total(self, tmp_path):
        merged = federation.merge_snapshots(self._envelopes(tmp_path, {
            "w1": _registry_with(counter=3),
            "w2": _registry_with(counter=5),
        }))
        samples = {s["labels"]["worker"]: s["value"]
                   for s in merged["cells_total"]["samples"]}
        assert samples == {"w1": 3.0, "w2": 5.0, "_total": 8.0}
        assert merged["cells_total"]["labelnames"] == ["outcome", "worker"]

    def test_histogram_buckets_sum_per_bound(self, tmp_path):
        merged = federation.merge_snapshots(self._envelopes(tmp_path, {
            "w1": _registry_with(observe=(0.05, 0.5)),
            "w2": _registry_with(observe=(0.5, 5.0)),
        }))
        by_worker = {s["labels"]["worker"]: s
                     for s in merged["cell_seconds"]["samples"]}
        total = by_worker["_total"]
        assert total["count"] == 4
        assert total["sum"] == pytest.approx(6.05)
        assert total["buckets"]["0.1"] == 1
        assert total["buckets"]["1"] == 3
        assert total["buckets"]["+Inf"] == 4

    def test_gauges_stay_per_worker_only(self, tmp_path):
        merged = federation.merge_snapshots(self._envelopes(tmp_path, {
            "w1": _registry_with(gauge=4),
            "w2": _registry_with(gauge=9),
        }))
        workers = [s["labels"]["worker"]
                   for s in merged["queue_depth"]["samples"]]
        assert sorted(workers) == ["w1", "w2"]  # no "_total" aggregate

    def test_merge_empty_is_empty(self):
        assert federation.merge_snapshots({}) == {}


class TestFederatedExposition:
    def test_body_has_one_header_block_and_worker_series(self, tmp_path):
        obs.enable()
        # The "coordinator" registry shares a metric name with the workers.
        obs.counter("cells_total", "Cells.", ("outcome",)).inc(
            2, outcome="executed")
        federation.write_snapshot(tmp_path, "w1",
                                  registry=_registry_with(counter=3))
        fed = federation.Federation(tmp_path)
        body = fed.render_prometheus()
        assert body.count("# TYPE cells_total counter") == 1
        assert 'cells_total{outcome="executed"} 2' in body
        assert 'cells_total{outcome="executed",worker="w1"} 3' in body
        assert 'cells_total{outcome="executed",worker="_total"} 3' in body

    def test_histogram_text_lines_are_cumulative(self, tmp_path):
        obs.enable()
        federation.write_snapshot(
            tmp_path, "w1", registry=_registry_with(observe=(0.05, 0.5)))
        body = federation.Federation(tmp_path).render_prometheus()
        assert 'cell_seconds_bucket{worker="w1",le="0.1"} 1' in body
        assert 'cell_seconds_bucket{worker="w1",le="1"} 2' in body
        assert 'cell_seconds_bucket{worker="w1",le="+Inf"} 2' in body
        assert 'cell_seconds_count{worker="w1"} 2' in body

    def test_snapshot_document_carries_federation_section(self, tmp_path):
        obs.enable()
        federation.write_snapshot(tmp_path, "w1",
                                  registry=_registry_with(counter=1))
        document = federation.Federation(tmp_path).snapshot()
        assert document["snapshot_version"] == 1
        section = document["federation"]
        assert section["federation_version"] == 1
        assert "w1" in section["workers"]
        assert section["workers"]["w1"]["age_seconds"] >= 0
        assert "cells_total" in section["metrics"]

    def test_obs_server_serves_federated_metrics(self, tmp_path):
        from urllib.request import urlopen

        obs.enable()
        federation.write_snapshot(tmp_path, "w1",
                                  registry=_registry_with(counter=7))
        obs.set_federation(federation.Federation(tmp_path))
        with obs.ObsServer(port=0) as server:
            with urlopen(f"http://127.0.0.1:{server.port}/metrics",
                         timeout=5.0) as response:
                body = response.read().decode("utf-8")
            with urlopen(f"http://127.0.0.1:{server.port}/snapshot",
                         timeout=5.0) as response:
                snapshot = json.loads(response.read().decode("utf-8"))
        assert 'cells_total{outcome="executed",worker="w1"} 7' in body
        assert snapshot["federation"]["metrics"]["cells_total"]
