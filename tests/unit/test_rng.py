"""Unit tests for the named random substreams."""

import pytest

from repro.simulation.rng import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_varies_with_name(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_varies_with_master_seed(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_rejects_non_int_master(self):
        with pytest.raises(TypeError):
            derive_seed("42", "alpha")

    def test_fits_in_64_bits(self):
        assert 0 <= derive_seed(7, "x") < 2 ** 64


class TestRandomSource:
    def test_same_master_seed_same_streams(self):
        a = RandomSource(5).stream("tags")
        b = RandomSource(5).stream("tags")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        source = RandomSource(5)
        a = [source.fresh_stream("a").random() for _ in range(3)]
        b = [source.fresh_stream("b").random() for _ in range(3)]
        assert a != b

    def test_stream_is_cached(self):
        source = RandomSource(0)
        assert source.stream("x") is source.stream("x")

    def test_fresh_stream_not_cached(self):
        source = RandomSource(0)
        assert source.fresh_stream("x") is not source.fresh_stream("x")

    def test_fresh_stream_replays_from_start(self):
        source = RandomSource(0)
        first = source.stream("x").random()
        replay = source.fresh_stream("x").random()
        assert first == replay

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).stream("")

    def test_numpy_stream(self):
        source = RandomSource(3)
        values = source.numpy_stream("np").random(4)
        again = RandomSource(3).numpy_stream("np").random(4)
        assert list(values) == list(again)

    def test_numpy_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).numpy_stream("")

    def test_spawn_derives_new_master(self):
        parent = RandomSource(9)
        child_a = parent.spawn("rep0")
        child_b = parent.spawn("rep1")
        assert child_a.master_seed != child_b.master_seed
        assert child_a.master_seed != parent.master_seed

    def test_spawn_deterministic(self):
        assert RandomSource(9).spawn("x").master_seed == RandomSource(9).spawn("x").master_seed

    def test_for_process_and_channel_names_disjoint(self):
        source = RandomSource(1)
        p = source.for_process(0)
        c = source.for_channel(0, 1)
        assert p is not c

    def test_for_component_with_index(self):
        source = RandomSource(1)
        assert source.for_component("loss", 3) is source.stream("loss:3")

    def test_rejects_bool_master_seed(self):
        with pytest.raises(TypeError):
            RandomSource(True)

    def test_master_seed_property(self):
        assert RandomSource(17).master_seed == 17
