"""Unit tests for ScenarioSuite / BatchRunner (repro.experiments.batch)."""

import json

import pytest

from repro.experiments.batch import (
    BatchExecutionError,
    BatchRunner,
    ScenarioSuite,
    SuiteItem,
)
from repro.experiments.config import Scenario
from repro.experiments.export import scenario_result_to_dict
from repro.experiments.runner import replicate, run_scenarios
from repro.network.loss import LossSpec
from repro.registry import AlgorithmSpec, algorithms


def fast_scenario(**overrides) -> Scenario:
    defaults = dict(
        algorithm="algorithm1",
        n_processes=3,
        max_time=30.0,
        stop_when_all_correct_delivered=True,
        drain_grace_period=2.0,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def result_fingerprint(result) -> str:
    return json.dumps(scenario_result_to_dict(result), sort_keys=True)


class TestSuiteConstruction:
    def test_add_and_groups_default_to_scenario_name(self):
        suite = ScenarioSuite("s").add(fast_scenario(name="a")).add(
            fast_scenario(name="b"), group="custom")
        items = suite.build()
        assert [item.group for item in items] == ["a", "custom"]
        assert [item.index for item in items] == [0, 1]

    def test_add_sweep_cross_product_and_custom_groups(self):
        base = fast_scenario()
        suite = ScenarioSuite("s").add_sweep(
            base, "n_processes", [3, 5], groups=["small", "large"])
        items = suite.build()
        assert [item.scenario.n_processes for item in items] == [3, 5]
        assert [item.group for item in items] == ["small", "large"]

    def test_add_sweep_group_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSuite("s").add_sweep(fast_scenario(), "seed", [1, 2],
                                         groups=["only-one"])

    def test_add_sweep_scenario_builder(self):
        base = fast_scenario(n_processes=4)
        suite = ScenarioSuite("s").add_sweep(
            base, "crashes", [0, 1],
            scenario_builder=lambda b, k: b.with_(
                crashes={b.n_processes - 1 - i: 2.0 for i in range(k)}),
        )
        items = suite.build()
        assert items[0].scenario.n_crashes == 0
        assert items[1].scenario.n_crashes == 1

    def test_add_grid_is_row_major_cross_product(self):
        suite = ScenarioSuite("s").add_grid(
            fast_scenario(), seed=[0, 1], n_processes=[3, 4])
        items = suite.build()
        combos = [(i.scenario.seed, i.scenario.n_processes) for i in items]
        assert combos == [(0, 3), (0, 4), (1, 3), (1, 4)]
        assert items[0].group == "seed=0,n_processes=3"

    def test_seed_fan_out_int_offsets_from_scenario_seed(self):
        suite = ScenarioSuite("s").add(fast_scenario(seed=10)).with_seeds(3)
        assert [item.scenario.seed for item in suite.build()] == [10, 11, 12]
        assert len(suite) == 3

    def test_seed_fan_out_explicit_sequence(self):
        suite = ScenarioSuite("s").add(fast_scenario()).with_seeds([7, 9])
        assert [item.scenario.seed for item in suite.build()] == [7, 9]

    def test_non_positive_seed_count_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSuite("s").with_seeds(0)

    def test_constructor_accepts_scenarios(self):
        suite = ScenarioSuite("s", [fast_scenario(name="x")])
        assert len(suite) == 1


class TestSequentialExecution:
    def test_results_are_ordered_and_grouped(self):
        suite = (ScenarioSuite("s")
                 .add(fast_scenario(name="a"))
                 .add(fast_scenario(name="b"))
                 .with_seeds(2))
        result = suite.run()
        assert result.ok
        assert len(result.results) == 4
        assert [item.group for item in result.items] == ["a", "a", "b", "b"]
        groups = result.groups()
        assert list(groups) == ["a", "b"]
        assert all(len(rs) == 2 for rs in groups.values())

    def test_group_stats_and_fractions(self):
        result = (ScenarioSuite("s").add(fast_scenario()).with_seeds(2)).run()
        stats = result.group_stats(lambda r: r.metrics.mean_latency)
        assert stats["scenario"] is not None
        assert stats["scenario"].count == 2
        ok = result.group_fraction(lambda r: r.all_properties_hold)
        assert ok["scenario"] == 1.0

    def test_progress_callback_sequential(self):
        calls = []
        (ScenarioSuite("s").add(fast_scenario()).with_seeds(3)).run(
            progress=lambda done, total, item: calls.append((done, total)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_describe_mentions_counts(self):
        result = (ScenarioSuite("named").add(fast_scenario())).run()
        text = result.describe()
        assert "named" in text
        assert "1/1" in text

    def test_runner_accepts_plain_scenarios_and_items(self):
        runner = BatchRunner()
        from_scenarios = runner.run([fast_scenario(name="x")])
        assert len(from_scenarios.results) == 1
        item = SuiteItem(index=0, group="g", scenario=fast_scenario())
        from_items = runner.run([item])
        assert from_items.items == (item,)

    def test_runner_handles_subset_of_prebuilt_items(self):
        suite = ScenarioSuite("s")
        for seed in range(4):
            suite.add(fast_scenario(name=f"sc{seed}", seed=seed))
        subset = suite.build()[2:4]  # item.index is 2 and 3, positions 0 and 1
        result = BatchRunner().run(subset)
        assert result.ok
        assert [r.scenario.seed for r in result.results] == [2, 3]
        assert result.outcomes[0].scenario.seed == 2

    def test_invalid_parallel_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(parallel=0)


class TestFailureIsolation:
    def test_one_broken_scenario_does_not_sink_the_suite(self):
        def broken_factory(scenario, index, env):
            raise RuntimeError("intentional failure")

        spec = AlgorithmSpec(name="tmp_broken", factory=broken_factory)
        with algorithms.scoped(spec):
            suite = (ScenarioSuite("s")
                     .add(fast_scenario(name="good"))
                     .add(fast_scenario(name="bad", algorithm="tmp_broken"))
                     .add(fast_scenario(name="good2")))
            result = suite.run()
        assert not result.ok
        assert len(result.results) == 2
        assert result.outcomes[1] is None
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 1
        assert "intentional failure" in failure.error
        assert "intentional failure" in failure.details
        with pytest.raises(BatchExecutionError) as excinfo:
            result.raise_on_failure()
        assert "item 1" in str(excinfo.value)

    def test_raise_on_failure_passthrough_when_ok(self):
        result = (ScenarioSuite("s").add(fast_scenario())).run()
        assert result.raise_on_failure() is result

    def test_batch_error_message_includes_worker_traceback(self):
        def broken_factory(scenario, index, env):
            raise RuntimeError("traceback-carrier")

        spec = AlgorithmSpec(name="tmp_broken_tb", factory=broken_factory)
        with algorithms.scoped(spec):
            result = (ScenarioSuite("s")
                      .add(fast_scenario(algorithm="tmp_broken_tb"))).run()
        with pytest.raises(BatchExecutionError) as excinfo:
            result.raise_on_failure()
        assert "traceback-carrier" in str(excinfo.value)
        assert "broken_factory" in str(excinfo.value)  # frame from the trace

    def test_on_result_sees_successes_only_as_they_complete(self):
        def broken_factory(scenario, index, env):
            raise RuntimeError("intentional failure")

        seen = []
        spec = AlgorithmSpec(name="tmp_broken_cb", factory=broken_factory)
        with algorithms.scoped(spec):
            suite = (ScenarioSuite("s")
                     .add(fast_scenario(name="good", seed=1))
                     .add(fast_scenario(name="bad", algorithm="tmp_broken_cb"))
                     .add(fast_scenario(name="good2", seed=2)))
            result = suite.run(
                on_result=lambda item, outcome: seen.append(
                    (item.index, outcome.scenario.seed)),
            )
        # The failed item never reaches the callback; successes do, with
        # their suite item attached.
        assert seen == [(0, 1), (2, 2)]
        assert len(result.failures) == 1

    def test_on_result_runs_in_calling_process_for_pool_runs(self):
        seen = []
        suite = (ScenarioSuite("s")
                 .add(fast_scenario(seed=1)).add(fast_scenario(seed=2)))
        result = suite.run(
            parallel=2,
            on_result=lambda item, outcome: seen.append(item.index),
        )
        assert sorted(seen) == [0, 1]
        assert result.ok

    def test_fail_fast_inline_preserves_exception_type(self):
        class CustomError(RuntimeError):
            pass

        def broken_factory(scenario, index, env):
            raise CustomError("original type survives")

        spec = AlgorithmSpec(name="tmp_fail_fast", factory=broken_factory)
        with algorithms.scoped(spec):
            suite = ScenarioSuite("s").add(fast_scenario(algorithm="tmp_fail_fast"))
            with pytest.raises(CustomError):
                suite.run(fail_fast=True)


class TestParallelExecution:
    def suite(self) -> ScenarioSuite:
        base = fast_scenario(algorithm="algorithm2", n_processes=4,
                             loss=LossSpec.bernoulli(0.2),
                             stop_when_all_correct_delivered=False,
                             stop_when_quiescent=True,
                             max_time=60.0)
        return (ScenarioSuite("cmp")
                .add_sweep(base, "loss",
                           [LossSpec.none(), LossSpec.bernoulli(0.3)])
                .with_seeds(2))

    def test_parallel_results_byte_identical_to_sequential(self):
        sequential = self.suite().run(parallel=1)
        parallel = self.suite().run(parallel=4)
        assert sequential.ok and parallel.ok
        assert parallel.parallel > 1
        sequential_bytes = [result_fingerprint(r) for r in sequential.results]
        parallel_bytes = [result_fingerprint(r) for r in parallel.results]
        assert sequential_bytes == parallel_bytes

    def test_parallel_progress_counts_monotonic(self):
        calls = []
        self.suite().run(parallel=2,
                         progress=lambda done, total, item: calls.append(
                             (done, total)))
        assert [c[0] for c in calls] == [1, 2, 3, 4]
        assert all(c[1] == 4 for c in calls)

    def test_workers_clamped_to_item_count(self):
        result = (ScenarioSuite("s").add(fast_scenario())).run(parallel=8)
        assert result.parallel == 1  # one item -> inline execution


class TestRunnerShims:
    def test_run_scenarios_matches_individual_runs(self):
        scenarios = [fast_scenario(seed=s) for s in range(2)]
        results = run_scenarios(scenarios)
        assert [r.scenario.seed for r in results] == [0, 1]

    def test_replicate_int_seed_semantics_preserved(self):
        results = replicate(fast_scenario(seed=5), 3)
        assert [r.scenario.seed for r in results] == [5, 6, 7]

    def test_replicate_explicit_seeds(self):
        results = replicate(fast_scenario(), [2, 4])
        assert [r.scenario.seed for r in results] == [2, 4]

    def test_replicate_rejects_non_positive_count(self):
        with pytest.raises(ValueError):
            replicate(fast_scenario(), 0)

    def test_replicate_parallel_matches_sequential(self):
        sequential = replicate(fast_scenario(), 2)
        parallel = replicate(fast_scenario(), 2, parallel=2)
        assert ([result_fingerprint(r) for r in sequential]
                == [result_fingerprint(r) for r in parallel])
