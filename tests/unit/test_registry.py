"""Unit tests for the pluggable component registries (repro.registry)."""

import pytest

from repro.core.baselines import BestEffortBroadcastProcess
from repro.experiments import config as config_module
from repro.experiments.config import Scenario
from repro.registry import (
    AlgorithmSpec,
    DuplicateComponentError,
    UnknownComponentError,
    algorithm_names,
    algorithms,
    channel_names,
    channels,
    detector_setup_names,
    detector_setups,
    get_algorithm,
    get_channel,
    get_detector_setup,
    get_workload,
    register_algorithm,
    workload_names,
    workloads,
)
from repro.workloads.generators import SingleBroadcast


class TestBuiltinRegistrations:
    def test_builtin_algorithms_present(self):
        names = algorithm_names()
        for expected in ("algorithm1", "algorithm2", "best_effort",
                         "eager_rb", "identified_urb"):
            assert expected in names

    def test_builtin_channels_present(self):
        assert set(channel_names()) >= {"fair_lossy", "reliable",
                                        "quasi_reliable"}

    def test_builtin_detector_setups_present(self):
        assert set(detector_setup_names()) >= {"oracle", "prescient", "none"}

    def test_builtin_workloads_present(self):
        assert set(workload_names()) >= {"single", "all_to_all",
                                         "uniform_stream", "burst", "poisson"}

    def test_algorithm_metadata_flags(self):
        assert get_algorithm("algorithm1").requires_majority
        assert not get_algorithm("algorithm1").supports_quiescence
        algorithm2 = get_algorithm("algorithm2")
        assert algorithm2.supports_quiescence
        assert algorithm2.uses_failure_detectors
        assert algorithm2.anonymous
        assert not get_algorithm("identified_urb").anonymous

    def test_registries_support_len_iter_contains(self):
        assert "algorithm2" in algorithms
        assert len(channels) >= 3
        assert list(iter(detector_setups)) == list(detector_setup_names())


class TestErrorMessages:
    def test_unknown_algorithm_lists_known_names(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            get_algorithm("paxos")
        message = str(excinfo.value)
        assert "paxos" in message
        assert "algorithm2" in message
        assert "register_" in message

    def test_unknown_lookup_is_a_value_error(self):
        with pytest.raises(ValueError):
            get_channel("carrier_pigeon")
        with pytest.raises(ValueError):
            get_detector_setup("psychic")
        with pytest.raises(ValueError):
            get_workload("firehose")

    def test_duplicate_registration_rejected(self):
        spec = get_algorithm("algorithm1")
        with pytest.raises(DuplicateComponentError) as excinfo:
            algorithms.register(spec)
        assert "already registered" in str(excinfo.value)
        assert "replace=True" in str(excinfo.value)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(UnknownComponentError):
            algorithms.unregister("never_registered")


class TestRegistrationLifecycle:
    def test_decorator_returns_factory_unchanged(self):
        def factory(scenario, index, env):
            return BestEffortBroadcastProcess(env)

        decorated = register_algorithm("tmp_decorated")(factory)
        try:
            assert decorated is factory
            assert "tmp_decorated" in algorithm_names()
        finally:
            algorithms.unregister("tmp_decorated")

    def test_scoped_registration_restores_previous_state(self):
        spec = AlgorithmSpec(
            name="tmp_scoped",
            factory=lambda scenario, index, env: BestEffortBroadcastProcess(env),
        )
        with algorithms.scoped(spec):
            assert "tmp_scoped" in algorithms
        assert "tmp_scoped" not in algorithms

    def test_scoped_replace_restores_original(self):
        original = get_algorithm("best_effort")
        override = AlgorithmSpec(name="best_effort", factory=original.factory,
                                 description="override")
        with algorithms.scoped(override, replace=True):
            assert get_algorithm("best_effort").description == "override"
        assert get_algorithm("best_effort") is original


class TestScenarioValidation:
    def test_scenario_accepts_scoped_registration(self):
        spec = AlgorithmSpec(
            name="tmp_scenario_algo",
            factory=lambda scenario, index, env: BestEffortBroadcastProcess(env),
        )
        with algorithms.scoped(spec):
            scenario = Scenario(algorithm="tmp_scenario_algo", n_processes=3)
            assert scenario.algorithm == "tmp_scenario_algo"
        with pytest.raises(ValueError):
            Scenario(algorithm="tmp_scenario_algo", n_processes=3)

    def test_scenario_validates_detector_setup(self):
        assert Scenario(detector_setup="prescient").detector_setup == "prescient"
        with pytest.raises(ValueError):
            Scenario(detector_setup="psychic")

    def test_scenario_validates_workload_names(self):
        assert Scenario(workload="all_to_all").workload == "all_to_all"
        with pytest.raises(ValueError):
            Scenario(workload="firehose")

    def test_workload_instances_still_accepted(self):
        workload = SingleBroadcast()
        assert Scenario(workload=workload).workload is workload

    def test_legacy_tuples_are_live_registry_views(self):
        assert config_module.ALGORITHMS == algorithm_names()
        assert config_module.CHANNEL_TYPES == channel_names()
        spec = AlgorithmSpec(
            name="tmp_live_view",
            factory=lambda scenario, index, env: BestEffortBroadcastProcess(env),
        )
        with algorithms.scoped(spec):
            assert "tmp_live_view" in config_module.ALGORITHMS

    def test_legacy_module_getattr_unknown_name(self):
        with pytest.raises(AttributeError):
            config_module.NOT_A_REGISTRY_VIEW


class TestWorkloadPresets:
    def test_preset_metadata_knobs(self):
        from repro.experiments.runner import build_workload
        from repro.simulation.rng import RandomSource

        scenario = Scenario(workload="burst", n_processes=4,
                            metadata={"burst_size": 7})
        workload = build_workload(scenario, RandomSource(scenario.seed))
        assert len(list(workload)) == 7

    def test_poisson_preset_is_seed_deterministic(self):
        from repro.experiments.runner import build_workload
        from repro.simulation.rng import RandomSource

        scenario = Scenario(workload="poisson", n_processes=5, seed=42)
        first = build_workload(scenario, RandomSource(scenario.seed))
        second = build_workload(scenario, RandomSource(scenario.seed))
        assert [c.time for c in first] == [c.time for c in second]

    def test_decorator_description_defaults_to_docstring(self):
        from repro.registry import register_workload

        def factory(scenario, rng):
            """A documented preset."""
            return SingleBroadcast()

        register_workload("tmp_documented")(factory)
        try:
            assert (get_workload("tmp_documented").description
                    == "A documented preset.")
        finally:
            workloads.unregister("tmp_documented")
