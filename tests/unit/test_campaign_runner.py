"""Unit tests for the resumable campaign runner and its aggregates."""

from __future__ import annotations

import pytest

from repro.campaigns import (
    Campaign,
    ResultStore,
    StoreError,
    campaign_groups,
    campaign_table,
    format_group_rows,
    run_campaign,
    scenario_cell_key,
)
from repro.experiments.batch import ScenarioSuite
from repro.experiments.config import Scenario
from repro.network.loss import LossSpec
from repro.registry import algorithms
from repro.registry.specs import AlgorithmSpec


def quick_scenario(**overrides) -> Scenario:
    base = dict(
        name="campaign-test",
        algorithm="algorithm2",
        n_processes=4,
        max_time=60.0,
        stop_when_quiescent=True,
        drain_grace_period=3.0,
    )
    base.update(overrides)
    return Scenario(**base)


def loss_suite(seeds: int = 2) -> ScenarioSuite:
    return (
        ScenarioSuite("loss-sweep")
        .add_sweep(quick_scenario(), "loss",
                   [LossSpec.none(), LossSpec.bernoulli(0.2)],
                   groups=["p=0", "p=0.2"])
        .with_seeds(seeds)
    )


class TestCampaignRun:
    def test_fresh_run_executes_every_cell(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            report = Campaign(store, loss_suite(), name="c").run()
            assert report.total == 4
            assert report.executed == 4
            assert report.cached == 0
            assert report.complete
            assert len(store) == 4
            info = store.campaign_info("c")
            assert info.complete and info.done == 4

    def test_second_run_is_all_cache_hits(self, tmp_path):
        """The acceptance guarantee: zero duplicate simulations."""
        with ResultStore(tmp_path / "store") as store:
            Campaign(store, loss_suite(), name="c").run()
            puts_before = store.puts
            report = Campaign(store, loss_suite(), name="c").run(resume=True)
            assert report.executed == 0
            assert report.cached == report.total == 4
            assert store.puts == puts_before  # nothing recomputed
            assert store.hits >= 4

    def test_interrupted_run_resumes_exactly(self, tmp_path):
        """Cells persisted before an interruption are never re-simulated."""
        suite = loss_suite(seeds=3)  # 6 cells
        prefix = ScenarioSuite("prefix", (
            item.scenario for item in suite.build()[:2]
        ))
        with ResultStore(tmp_path / "store") as store:
            # Simulate a killed run: only the first two cells got persisted.
            Campaign(store, prefix, name="partial").run()
            assert len(store) == 2
            report = Campaign(store, suite, name="full").run()
            assert report.cached == 2
            assert report.executed == 4
            assert len(store) == 6

    def test_name_reuse_requires_resume(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            Campaign(store, loss_suite(), name="c").run()
            with pytest.raises(StoreError, match="resume"):
                Campaign(store, loss_suite(), name="c").run()

    def test_duplicate_cells_run_once(self, tmp_path):
        scenario = quick_scenario()
        suite = ScenarioSuite("dup").add(scenario).add(scenario)
        with ResultStore(tmp_path / "store") as store:
            report = Campaign(store, suite, name="dup").run()
            assert report.total == 2
            assert report.executed == 1
            assert report.duplicates == 1
            assert len(store) == 1
            # Counter classification is stable across runs: the duplicate
            # position stays a duplicate, the stored cell becomes the hit.
            resumed = Campaign(store, suite, name="dup").run(resume=True)
            assert resumed.cached == 1
            assert resumed.duplicates == 1
            assert resumed.executed == 0
            info = store.campaign_info("dup")
            assert info.total == 1 and info.complete

    def test_recompute_overwrites_cached_cells(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            Campaign(store, loss_suite(), name="c").run()
            report = Campaign(store, loss_suite(), name="c").run(
                recompute=True)
            assert report.executed == 4
            assert report.cached == 0
            assert store.puts == 8

    def test_sharding_is_invisible_in_the_results(self, tmp_path):
        with ResultStore(tmp_path / "s1") as one_shard, \
                ResultStore(tmp_path / "s2") as tiny_shards:
            Campaign(one_shard, loss_suite(), name="c").run()
            Campaign(tiny_shards, loss_suite(), name="c",
                     shard_size=1).run()
            rows_a = one_shard.query(campaign="c")
            rows_b = tiny_shards.query(campaign="c")
            assert [r.cell_key for r in rows_a] == [r.cell_key for r in rows_b]
            assert [r.mean_latency for r in rows_a] == [
                r.mean_latency for r in rows_b
            ]

    def test_progress_reports_pending_cells(self, tmp_path):
        calls = []
        with ResultStore(tmp_path / "store") as store:
            Campaign(store, loss_suite(), name="c", shard_size=3).run(
                progress=lambda done, total, item: calls.append((done, total))
            )
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_failures_are_isolated_and_retried_on_resume(self, tmp_path):
        boom = AlgorithmSpec(
            name="campaign_boom",
            factory=lambda scenario, index, env: (_ for _ in ()).throw(
                RuntimeError("boom")),
            description="always crashes (test)",
        )
        with algorithms.scoped(boom):
            suite = ScenarioSuite("mixed", [
                quick_scenario(),
                quick_scenario(algorithm="campaign_boom", seed=1),
            ])
            with ResultStore(tmp_path / "store") as store:
                report = Campaign(store, suite, name="mixed").run()
                assert report.executed == 1
                assert len(report.failures) == 1
                assert report.failures[0].index == 1
                assert "boom" in report.failures[0].details
                assert not report.complete
                assert len(store) == 1
                # The failed cell stays pending: a resume retries it (and
                # only it).
                retry = Campaign(store, suite, name="mixed").run(resume=True)
                assert retry.cached == 1
                assert len(retry.failures) == 1

    def test_run_campaign_accepts_a_path(self, tmp_path):
        report = run_campaign(tmp_path / "store", loss_suite(), name="c")
        assert report.executed == 4
        with ResultStore(tmp_path / "store", create=False) as store:
            assert len(store) == 4


class TestCampaignAggregates:
    def test_aggregates_bit_identical_to_in_memory_sweep(self, tmp_path):
        """Stored aggregates must equal a single-shot in-memory sweep,
        float for float and cell string for cell string."""
        suite = loss_suite(seeds=3)
        live = suite.run()
        with ResultStore(tmp_path / "store") as store:
            # Interrupt + resume on purpose: the guarantee must hold even
            # for a store populated across several runs.
            prefix = ScenarioSuite("p", (
                item.scenario for item in suite.build()[:3]
            ))
            Campaign(store, prefix, name="warmup").run()
            Campaign(store, suite, name="real").run()

            stored_groups = campaign_groups(store, "real")
            live_groups = live.groups()
            assert list(stored_groups) == list(live_groups)
            for group in live_groups:
                stored_latencies = [r.mean_latency
                                    for r in stored_groups[group]]
                live_latencies = [r.metrics.mean_latency
                                  for r in live_groups[group]]
                assert stored_latencies == live_latencies  # exact floats

            stored_rows = campaign_table(store, "real").rows
            live_rows = format_group_rows(
                live_groups,
                mean_latency_of=lambda r: r.metrics.mean_latency,
                ok_of=lambda r: r.all_properties_hold,
                quiescent_of=lambda r: r.quiescence.quiescent,
            )
            assert stored_rows == live_rows

    def test_parallel_campaign_matches_sequential(self, tmp_path):
        suite = loss_suite()
        with ResultStore(tmp_path / "seq") as sequential, \
                ResultStore(tmp_path / "par") as parallel:
            Campaign(sequential, suite, name="c").run()
            Campaign(parallel, suite, name="c", parallel=2).run()
            rows_seq = sequential.query(campaign="c")
            rows_par = parallel.query(campaign="c")
            assert [(r.cell_key, r.mean_latency, r.total_sends)
                    for r in rows_seq] == [
                (r.cell_key, r.mean_latency, r.total_sends)
                for r in rows_par
            ]

    def test_campaign_rows_align_with_items(self, tmp_path):
        suite = loss_suite()
        with ResultStore(tmp_path / "store") as store:
            campaign = Campaign(store, suite, name="c")
            assert all(row is None for row in campaign.rows())
            campaign.run()
            rows = campaign.rows()
            assert all(row is not None for row in rows)
            assert [row.cell_key for row in rows] == list(
                campaign.cell_keys()
            )
            assert [row.seed for row in rows] == [
                item.scenario.seed for item in campaign.items
            ]

    def test_cell_keys_cross_campaign_cache(self, tmp_path):
        """A different campaign covering the same configuration reuses the
        stored cell — the cache is content-addressed, not campaign-scoped."""
        scenario = quick_scenario()
        with ResultStore(tmp_path / "store") as store:
            Campaign(store, [scenario], name="first").run()
            report = Campaign(store, [scenario], name="second").run()
            assert report.cached == 1 and report.executed == 0
            assert len(store) == 1
            assert store.contains(scenario_cell_key(scenario), count=False)
