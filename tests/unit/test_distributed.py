"""Unit tests for the distributed campaign subsystem: lease protocol,
store merge, worker/coordinator, and cost planning."""

from __future__ import annotations

import json
import sqlite3
import threading
import zlib

import pytest

from repro.campaigns import (
    Coordinator,
    MergeConflictError,
    ResultStore,
    StoreError,
    Worker,
    campaign_table,
    merge_store_paths,
    merge_stores,
    plan_campaign,
    run_campaign,
    scenario_cell_key,
)
from repro.campaigns.distributed import LeaseError, LeaseTable
from repro.campaigns.hashing import canonical_scenario_dict
from repro.experiments.batch import ScenarioSuite
from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.network.loss import LossSpec


def quick_scenario(**overrides) -> Scenario:
    base = dict(
        name="dist-test",
        algorithm="algorithm2",
        n_processes=4,
        max_time=60.0,
        stop_when_quiescent=True,
        drain_grace_period=3.0,
    )
    base.update(overrides)
    return Scenario(**base)


def quick_suite(seeds: int = 3) -> ScenarioSuite:
    suite = ScenarioSuite("dist-suite")
    suite.add_sweep(quick_scenario(), "loss",
                    [LossSpec.none(), LossSpec.bernoulli(0.2)])
    return suite.with_seeds(seeds)


def manifest_cells(n: int) -> list[tuple[int, str, str, dict]]:
    """A synthetic n-cell manifest (lease tests never execute cells)."""
    return [
        (index, f"g{index % 2}", f"key{index:04d}",
         canonical_scenario_dict(quick_scenario(seed=index)))
        for index in range(n)
    ]


def make_job(tmp_path, n_cells: int = 8, *, lease_timeout: float = 10.0,
             range_size: int = 4) -> LeaseTable:
    table = LeaseTable(tmp_path / "job", create=True)
    table.initialise(name="job", suite_name="suite",
                     cells=manifest_cells(n_cells),
                     lease_timeout=lease_timeout, range_size=range_size)
    return table


# --------------------------------------------------------------------------- #
# lease protocol
# --------------------------------------------------------------------------- #
class TestLeaseTable:
    def test_open_missing_job_fails(self, tmp_path):
        with pytest.raises(LeaseError, match="no distributed job"):
            LeaseTable(tmp_path / "absent")

    def test_initialise_is_idempotent_on_identical_manifest(self, tmp_path):
        with make_job(tmp_path) as table:
            table.initialise(name="job", suite_name="suite",
                             cells=manifest_cells(8))
            assert table.status().total_cells == 8

    def test_initialise_rejects_a_different_manifest(self, tmp_path):
        with make_job(tmp_path) as table:
            with pytest.raises(LeaseError, match="different manifest"):
                table.initialise(name="job", suite_name="suite",
                                 cells=manifest_cells(9))
            with pytest.raises(LeaseError, match="different manifest"):
                table.initialise(name="other", suite_name="suite",
                                 cells=manifest_cells(8))

    def test_claim_grants_disjoint_ranges_in_position_order(self, tmp_path):
        with make_job(tmp_path) as table:
            first = table.claim("w1", now=100.0)
            second = table.claim("w2", now=100.0)
            assert first is not None and second is not None
            assert first.start == 0 and second.start == first.count
            positions = [cell.position for cell in first.cells]
            assert positions == list(range(first.start,
                                           first.start + first.count))
            assert [cell.cell_key for cell in first.cells] == [
                f"key{p:04d}" for p in positions
            ]

    def test_claim_returns_none_when_everything_is_leased(self, tmp_path):
        with make_job(tmp_path, n_cells=4, range_size=4) as table:
            # Drain: shrinking grants may split the range, so claim until
            # w1 holds every cell.
            while table.claim("w1", now=100.0) is not None:
                pass
            assert table.claim("w2", now=100.0) is None

    def test_heartbeat_exactly_at_timeout_keeps_the_lease(self, tmp_path):
        # lease_timeout=10, claimed at t=100 → expires at t=110.  A claim at
        # exactly t=110 must NOT reclaim (strict <); at t=110.001 it must.
        with make_job(tmp_path, n_cells=1, range_size=1,
                      lease_timeout=10.0) as table:
            grant = table.claim("w1", now=100.0)
            assert grant is not None and grant.lease_expires == 110.0
            assert table.claim("w2", now=110.0) is None
            stolen = table.claim("w2", now=110.001)
            assert stolen is not None
            assert stolen.start == grant.start
            assert stolen.epoch == grant.epoch + 1

    def test_double_reclaim_only_one_claimant_wins(self, tmp_path):
        with make_job(tmp_path, n_cells=1, range_size=1,
                      lease_timeout=10.0) as table:
            table.claim("w1", now=100.0)
            # Two workers race for the single expired range: the first
            # claim reclaims and re-leases it, the second finds nothing.
            first = table.claim("w2", now=200.0)
            second = table.claim("w3", now=200.0)
            assert first is not None and first.worker == "w2"
            assert second is None
            assert table.status(now=200.0).reclaims == 1

    def test_zombie_worker_is_fenced_by_epoch(self, tmp_path):
        with make_job(tmp_path, n_cells=1, range_size=1,
                      lease_timeout=10.0) as table:
            zombie = table.claim("w1", now=100.0)
            stolen = table.claim("w2", now=150.0)
            assert stolen is not None
            # The zombie's lease was reclaimed: every guarded call it makes
            # must fail and must not corrupt the new owner's progress.
            assert not table.renew(zombie, now=150.0)
            assert not table.record_cell_done(zombie, now=150.0)
            assert not table.complete_range(zombie)
            assert table.record_cell_done(stolen, now=151.0)
            status = table.status(now=151.0)
            assert status.completed_cells == 1
            assert table.complete_range(stolen)
            assert table.status(now=151.0).complete

    def test_renew_extends_the_lease(self, tmp_path):
        with make_job(tmp_path, n_cells=1, range_size=1,
                      lease_timeout=10.0) as table:
            grant = table.claim("w1", now=100.0)
            assert table.renew(grant, now=109.0)  # expires 119 now
            assert table.claim("w2", now=112.0) is None

    def test_reclaimed_range_resets_progress(self, tmp_path):
        with make_job(tmp_path, n_cells=1, range_size=1,
                      lease_timeout=10.0) as table:
            grant = table.claim("w1", now=100.0)
            assert table.record_cell_done(grant, now=101.0)
            assert table.status(now=101.0).completed_cells == 1
            stolen = table.claim("w2", now=200.0)
            assert stolen is not None
            # The new owner restarts the range: the zombie's partial count
            # must not double-count once the range completes.
            assert table.status(now=200.0).completed_cells == 0

    def test_shrinking_grants_near_the_tail(self, tmp_path):
        with make_job(tmp_path, n_cells=8, range_size=8,
                      lease_timeout=10.0) as table:
            table.register_worker("w1", "s1")
            table.register_worker("w2", "s2")
            grant = table.claim("w1", now=0.0)
            # 8 pending cells over 2 active workers: cap = ceil(8/4) = 2,
            # so the 8-cell range is split rather than granted whole.
            assert grant is not None and grant.count == 2
            other = table.claim("w2", now=0.0)
            assert other is not None and other.start == 2
            status = table.status(now=0.0)
            assert status.pending_cells == 8 - grant.count - other.count

    def test_status_counts_cells_and_ranges(self, tmp_path):
        with make_job(tmp_path, n_cells=8, range_size=4,
                      lease_timeout=10.0) as table:
            status = table.status(now=0.0)
            assert status.total_cells == 8 and status.pending_cells == 8
            assert not status.complete
            grant = table.claim("w1", now=0.0)
            assert table.record_cell_done(grant, now=1.0)
            status = table.status(now=1.0)
            assert status.completed_cells == 1
            assert status.leased_cells == grant.count - 1

    def test_worker_registration_records_store_paths(self, tmp_path):
        with make_job(tmp_path) as table:
            table.register_worker("w1", tmp_path / "s1")
            table.register_worker("w2", tmp_path / "s2")
            table.register_worker("w1", tmp_path / "s1b")  # re-register
            assert table.worker_stores() == [tmp_path / "s1b",
                                             tmp_path / "s2"]


# --------------------------------------------------------------------------- #
# store merge
# --------------------------------------------------------------------------- #
def store_with_results(root, seeds) -> list[str]:
    keys = []
    with ResultStore(root) as store:
        for seed in seeds:
            scenario = quick_scenario(seed=seed)
            store.put(run_scenario(scenario))
            keys.append(scenario_cell_key(scenario))
    return keys


class TestMergeStores:
    def test_disjoint_union(self, tmp_path):
        keys_a = store_with_results(tmp_path / "a", [0, 1])
        keys_b = store_with_results(tmp_path / "b", [2])
        with ResultStore(tmp_path / "a") as dest, \
                ResultStore(tmp_path / "b") as source:
            stats = merge_stores(dest, [source])
            assert stats.copied == 1 and stats.skipped == 0
            assert set(dest.result_cell_keys()) == set(keys_a + keys_b)
            # Copied rows are loadable and keep their provenance columns.
            row = dest.get(keys_b[0], count=False)
            assert row is not None and row.wall_time is not None
            verdict = dest.load(keys_b[0])["result"]["verdict"]
            assert verdict["validity"] and not verdict["violations"]

    def test_merge_is_idempotent(self, tmp_path):
        store_with_results(tmp_path / "a", [0, 1])
        store_with_results(tmp_path / "b", [1, 2])
        for expected_copied in (1, 0):  # second merge copies nothing
            with ResultStore(tmp_path / "a") as dest, \
                    ResultStore(tmp_path / "b") as source:
                stats = merge_stores(dest, [source])
                assert stats.copied == expected_copied

    def test_overlap_with_different_created_at_is_not_a_conflict(
            self, tmp_path):
        # The same cell executed twice stores blobs differing only in the
        # volatile created_at stamp — semantically equal, merge skips it.
        store_with_results(tmp_path / "a", [0])
        store_with_results(tmp_path / "b", [0])
        with ResultStore(tmp_path / "a") as dest, \
                ResultStore(tmp_path / "b") as source:
            stats = merge_stores(dest, [source])
            assert stats.copied == 0 and stats.skipped == 1

    def test_semantic_conflict_fails_loudly(self, tmp_path):
        [key] = store_with_results(tmp_path / "a", [0])
        store_with_results(tmp_path / "b", [0])
        # Tamper with one store's blob: same cell key, different content —
        # exactly what a determinism bug would produce.
        blob_path = (tmp_path / "b" / "blobs" / key[:2] / f"{key}.json.z")
        payload = json.loads(zlib.decompress(blob_path.read_bytes()))
        payload["result"]["verdict"]["validity"] = False
        blob_path.write_bytes(zlib.compress(json.dumps(payload).encode()))
        with ResultStore(tmp_path / "a") as dest, \
                ResultStore(tmp_path / "b") as source:
            with pytest.raises(MergeConflictError, match=key[:12]):
                merge_stores(dest, [source])

    def test_self_merge_is_rejected(self, tmp_path):
        store_with_results(tmp_path / "a", [0])
        with ResultStore(tmp_path / "a") as handle:
            with pytest.raises(StoreError, match="into itself"):
                merge_stores(handle, [handle])

    def test_campaign_manifests_and_artifacts_merge(self, tmp_path):
        run_campaign(tmp_path / "a", quick_suite(seeds=1), name="camp-a")
        run_campaign(tmp_path / "b", quick_suite(seeds=1), name="camp-b")
        stats = merge_store_paths(tmp_path / "a", [tmp_path / "b"])
        assert stats.campaigns_added == 1
        with ResultStore(tmp_path / "a", create=False) as dest:
            assert {info.name for info in dest.campaigns()} == {
                "camp-a", "camp-b"}
            # Both campaigns render complete from the merged store.
            for name in ("camp-a", "camp-b"):
                artifact = campaign_table(dest, name)
                assert "2/2" in artifact.name

    def test_merge_rejects_conflicting_campaign_manifest(self, tmp_path):
        run_campaign(tmp_path / "a", quick_suite(seeds=1), name="camp")
        run_campaign(tmp_path / "b", quick_suite(seeds=2), name="camp")
        with pytest.raises(StoreError, match="different cell list"):
            merge_store_paths(tmp_path / "a", [tmp_path / "b"])

    def test_missing_source_store_fails(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            merge_store_paths(tmp_path / "dest", [tmp_path / "absent"])


# --------------------------------------------------------------------------- #
# worker + coordinator
# --------------------------------------------------------------------------- #
class TestWorkerAndCoordinator:
    def run_distributed(self, tmp_path, *, n_workers=2, suite=None,
                        name="dist"):
        suite = suite or quick_suite(seeds=2)
        coordinator = Coordinator(tmp_path / "job", suite, name=name,
                                  lease_timeout=30.0, range_size=2)
        coordinator.prepare()
        reports = {}

        def work(index: int) -> None:
            reports[index] = Worker(
                tmp_path / "job", worker_id=f"w{index}",
                poll_interval=0.02,
            ).run()

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(n_workers)]
        for thread in threads:
            thread.start()
        report = coordinator.serve(tmp_path / "merged", poll_interval=0.05,
                                   timeout=120.0)
        for thread in threads:
            thread.join()
        return report, reports

    def test_distributed_run_completes_and_merges(self, tmp_path):
        report, worker_reports = self.run_distributed(tmp_path)
        assert report.status.complete
        assert report.merge.copied == 4
        executed = sum(r.cells_executed for r in worker_reports.values())
        assert executed == 4  # every cell executed exactly once
        with ResultStore(tmp_path / "merged", create=False) as store:
            info = store.campaign_info("dist")
            assert info is not None and info.complete

    def test_distributed_aggregates_match_single_shot(self, tmp_path):
        report, _reports = self.run_distributed(tmp_path,
                                                suite=quick_suite(seeds=3))
        assert report.status.complete
        run_campaign(tmp_path / "single", quick_suite(seeds=3), name="dist")
        with ResultStore(tmp_path / "merged", create=False) as merged, \
                ResultStore(tmp_path / "single", create=False) as single:
            distributed = campaign_table(merged, "dist")
            reference = campaign_table(single, "dist")
            assert distributed.rows == reference.rows

    def test_serve_is_idempotent_after_completion(self, tmp_path):
        suite = quick_suite(seeds=2)
        self.run_distributed(tmp_path, suite=suite)
        # Coordinator death after completion: re-serving the same workdir
        # re-merges (0 copies) and re-registers the identical manifest.
        coordinator = Coordinator(tmp_path / "job", suite, name="dist")
        report = coordinator.serve(tmp_path / "merged", poll_interval=0.05,
                                   timeout=30.0)
        assert report.status.complete and report.merge.copied == 0

    def test_worker_without_job_times_out(self, tmp_path):
        worker = Worker(tmp_path / "job", worker_id="w0",
                        poll_interval=0.02, wait_for_job=0.1)
        with pytest.raises(LeaseError, match="no distributed job"):
            worker.run()

    def test_wait_times_out_loudly(self, tmp_path):
        coordinator = Coordinator(tmp_path / "job", quick_suite(seeds=1),
                                  name="stuck")
        coordinator.prepare()  # no workers ever start
        with pytest.raises(LeaseError, match="did not complete"):
            coordinator.wait(poll_interval=0.02, timeout=0.1)

    def test_worker_skips_cells_already_in_its_store(self, tmp_path):
        suite = quick_suite(seeds=2)
        coordinator = Coordinator(tmp_path / "job", suite, name="dist",
                                  range_size=2)
        coordinator.prepare()
        # Pre-populate the worker's store with the full suite.
        run_campaign(tmp_path / "prefilled", suite, name="warm")
        report = Worker(tmp_path / "job", worker_id="w0",
                        store_root=tmp_path / "prefilled",
                        poll_interval=0.02).run()
        assert report.cells_executed == 0
        assert report.cells_cached == 4


# --------------------------------------------------------------------------- #
# concurrent store access
# --------------------------------------------------------------------------- #
def _put_worker(root, seeds, barrier, errors) -> None:
    """Subprocess body: open an own handle, write one cell per seed."""
    try:
        with ResultStore(root) as store:
            barrier.wait(timeout=30)  # maximise write overlap
            for seed in seeds:
                store.put(run_scenario(quick_scenario(seed=seed)))
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        errors.put(f"{type(exc).__name__}: {exc}")


class TestConcurrentStoreAccess:
    def test_two_processes_writing_disjoint_cells_do_not_lock(self, tmp_path):
        import multiprocessing

        context = multiprocessing.get_context()
        root = tmp_path / "store"
        ResultStore(root).close()  # schema init up front
        barrier = context.Barrier(2)
        errors = context.Queue()
        processes = [
            context.Process(target=_put_worker,
                            args=(root, seeds, barrier, errors))
            for seeds in ([0, 1, 2, 3], [4, 5, 6, 7])
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=120)
        failures = []
        while not errors.empty():
            failures.append(errors.get())
        # The old deferred-transaction handles raised "database is locked"
        # here; IMMEDIATE transactions + busy_timeout must not.
        assert not failures, failures
        assert all(process.exitcode == 0 for process in processes)
        with ResultStore(root, create=False) as store:
            assert len(store) == 8

    def test_two_handles_in_one_process_interleave_writes(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as first, ResultStore(root) as second:
            for seed, handle in enumerate([first, second] * 3):
                handle.put(run_scenario(quick_scenario(seed=seed)))
            assert len(first) == len(second) == 6


# --------------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------------- #
class TestPlanCampaign:
    def test_plan_without_store_uses_assumed_basis(self):
        plan = plan_campaign(quick_suite(seeds=2),
                             default_cell_seconds=2.0,
                             target_seconds=4.0)
        assert plan.estimate_basis == "assumed"
        assert plan.pending_cells == 4
        assert plan.est_sequential_seconds == pytest.approx(8.0)
        assert plan.suggested_workers == 2

    def test_plan_uses_stored_suite_timings(self, tmp_path):
        run_campaign(tmp_path / "store", quick_suite(seeds=1), name="warm")
        plan = plan_campaign(quick_suite(seeds=2), tmp_path / "store")
        assert plan.estimate_basis == "suite"
        assert plan.stored_cells == 2 and plan.pending_cells == 2
        assert plan.timed_cells == 2
        assert plan.mean_cell_seconds > 0

    def test_fully_stored_suite_needs_no_workers(self, tmp_path):
        run_campaign(tmp_path / "store", quick_suite(seeds=1), name="warm")
        plan = plan_campaign(quick_suite(seeds=1), tmp_path / "store")
        assert plan.pending_cells == 0
        assert plan.suggested_workers is None
        assert "no workers needed" in plan.describe()

    def test_store_basis_when_suite_cells_are_unknown(self, tmp_path):
        run_campaign(tmp_path / "store", quick_suite(seeds=1), name="warm")
        other = ScenarioSuite("other").add(
            quick_scenario(seed=99)).with_seeds(1)
        plan = plan_campaign(other, tmp_path / "store")
        assert plan.estimate_basis == "store"
        assert plan.timed_cells == 2

    def test_plan_table_renders(self):
        artifact = plan_campaign(quick_suite(seeds=1),
                                 worker_counts=(1, 2)).table()
        assert artifact.headers == ["workers", "est wall s", "speedup"]
        assert len(artifact.rows) == 2


# --------------------------------------------------------------------------- #
# store schema v2 satellites (wall_time + migration)
# --------------------------------------------------------------------------- #
class TestWallTimeAndMigration:
    def test_put_records_wall_time(self, tmp_path):
        result = run_scenario(quick_scenario())
        assert result.wall_time is not None and result.wall_time > 0
        with ResultStore(tmp_path / "store") as store:
            row = store.put(result)
            assert row.wall_time == pytest.approx(result.wall_time)

    def test_wall_time_stays_out_of_the_blob(self, tmp_path):
        # Blob determinism is what makes merge conflict detection sound, so
        # the volatile timing must live in the index only.
        scenario = quick_scenario()
        with ResultStore(tmp_path / "store") as store:
            store.put(run_scenario(scenario))
            payload = store.load(scenario_cell_key(scenario))
            assert "wall_time" not in json.dumps(
                {k: v for k, v in payload["result"].items() if k != "schedule"}
            )

    def _downgrade_to_v1(self, root) -> None:
        with sqlite3.connect(root / "index.sqlite") as db:
            db.execute("ALTER TABLE results DROP COLUMN wall_time")
            db.execute("UPDATE meta SET value = '1' "
                       "WHERE key = 'schema_version'")

    def test_v1_store_migrates_in_place(self, tmp_path):
        root = tmp_path / "store"
        scenario = quick_scenario()
        with ResultStore(root) as store:
            store.put(run_scenario(scenario))
        self._downgrade_to_v1(root)
        with ResultStore(root) as store:
            # Old rows read tolerantly: timing unknown, everything else
            # intact; new writes carry timings again.
            row = store.get(scenario_cell_key(scenario), count=False)
            assert row is not None and row.wall_time is None
            other = quick_scenario(seed=5)
            assert store.put(run_scenario(other)).wall_time is not None
        with sqlite3.connect(root / "index.sqlite") as db:
            recorded = db.execute("SELECT value FROM meta WHERE key = "
                                  "'schema_version'").fetchone()[0]
        assert recorded == "2"

    def test_future_schema_still_rejected(self, tmp_path):
        from repro.campaigns import SchemaMismatchError

        root = tmp_path / "store"
        ResultStore(root).close()
        with sqlite3.connect(root / "index.sqlite") as db:
            db.execute("UPDATE meta SET value = '99' "
                       "WHERE key = 'schema_version'")
        with pytest.raises(SchemaMismatchError):
            ResultStore(root)
