"""Determinism parity tests for the hot-path overhaul.

The performance work (tuple-keyed pooled event queue, broadcast fast path,
level-gated tracing/metrics, batched sampling) carries one invariant: under
identical seeds, optimized paths must produce *bit-identical* traces,
metrics summaries and delivery logs.  These tests pin that invariant by
running the same scenario through different hot-path configurations and
comparing full digests.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Scenario
from repro.experiments.runner import build_engine
from repro.network.delay import DelaySpec
from repro.network.loss import LossSpec
from repro.simulation.hooks import DeliveryTimelineHook
from repro.simulation.metrics import MetricsCollector, MetricsLevel
from repro.simulation.tracing import TraceLevel, TraceRecorder


def run_engine(scenario: Scenario, **engine_overrides):
    engine = build_engine(scenario)
    for name, value in engine_overrides.items():
        setattr(engine, name, value)
    return engine.run()


def fingerprint(result):
    """Everything observable about a run, as a comparable value."""
    return (
        result.trace.digest(),
        result.metrics_summary().as_dict(),
        {i: log.contents() for i, log in result.delivery_logs.items()},
        result.final_time,
        result.stop_reason,
        result.event_stats.as_dict(),
    )


BASE = Scenario(
    name="parity",
    algorithm="algorithm2",
    n_processes=6,
    seed=42,
    loss=LossSpec.bernoulli(0.2),
    delay=DelaySpec.uniform(0.05, 0.5),
    crashes={5: 8.0},
    workload="burst",
    metadata={"burst_size": 6},
    stop_when_quiescent=True,
    drain_grace_period=2.0,
    max_time=200.0,
)


class TestSameSeedParity:
    def test_identical_runs_are_bit_identical(self):
        assert fingerprint(run_engine(BASE)) == fingerprint(run_engine(BASE))

    def test_algorithm1_runs_are_bit_identical(self):
        scenario = BASE.with_(
            algorithm="algorithm1",
            crashes={},
            stop_when_quiescent=False,
            stop_when_all_correct_delivered=True,
            max_time=60.0,
        )
        assert fingerprint(run_engine(scenario)) == fingerprint(run_engine(scenario))

    def test_different_seeds_differ(self):
        a = run_engine(BASE)
        b = run_engine(BASE.with_seed(43))
        assert a.trace.digest() != b.trace.digest()


class TestGatingParity:
    def test_metrics_identical_with_and_without_tracing(self):
        """Disabling the trace recorder must not change metrics or logs."""
        traced = run_engine(BASE)
        untraced = run_engine(BASE.with_(trace_enabled=False))
        assert (
            traced.metrics_summary().as_dict()
            == untraced.metrics_summary().as_dict()
        )
        assert {i: log.contents() for i, log in traced.delivery_logs.items()} == {
            i: log.contents() for i, log in untraced.delivery_logs.items()
        }
        assert traced.final_time == untraced.final_time
        assert traced.stop_reason == untraced.stop_reason
        assert len(untraced.trace) == 0

    def test_deliveries_trace_level_is_a_subset_of_full(self):
        full = run_engine(BASE)
        gated = run_engine(
            BASE, trace=TraceRecorder(level=TraceLevel.DELIVERIES)
        )
        full_protocol = [
            (e.time, e.category, e.process, dict(e.details))
            for e in full.trace
            if gated.trace.wants(e.category)
        ]
        gated_events = [
            (e.time, e.category, e.process, dict(e.details))
            for e in gated.trace
        ]
        assert full_protocol == gated_events
        assert len(gated.trace) < len(full.trace)

    def test_counters_metrics_level_matches_full_aggregates(self):
        full = run_engine(BASE)
        counters = run_engine(
            BASE, metrics=MetricsCollector(level=MetricsLevel.COUNTERS)
        )
        full_summary = full.metrics_summary()
        counters_summary = counters.metrics_summary()
        assert counters_summary.total_sends == full_summary.total_sends
        assert counters_summary.total_drops == full_summary.total_drops
        assert counters_summary.deliveries == full_summary.deliveries
        assert counters_summary.sends_by_kind == full_summary.sends_by_kind
        assert counters_summary.last_send_time == full_summary.last_send_time
        # Per-event lists are gated out at COUNTERS level.
        assert counters.metrics.send_timeline == []
        assert counters.metrics.latency_samples == []
        assert counters_summary.mean_latency is None

    def test_hooks_path_matches_fast_path(self):
        """The hooked (legacy) broadcast path and the no-hooks fast path
        must produce identical traces — an observation-only hook cannot
        perturb the run."""
        plain = run_engine(BASE)
        hooked = run_engine(BASE.with_(hooks=(DeliveryTimelineHook(),)))
        assert fingerprint(plain) == fingerprint(hooked)


class TestBatchedSamplingParity:
    @pytest.mark.parametrize("blocks", [(1, 4096), (7, 256)])
    def test_block_size_does_not_change_the_run(self, blocks):
        """NumPy streams are chunking-invariant: any two block sizes give
        bit-identical runs."""
        a_block, b_block = blocks
        base = BASE.with_(
            loss=LossSpec.bernoulli(0.2, batch=a_block),
            delay=DelaySpec.exponential(mean=0.3, cap=4.0, batch=a_block),
        )
        other = BASE.with_(
            loss=LossSpec.bernoulli(0.2, batch=b_block),
            delay=DelaySpec.exponential(mean=0.3, cap=4.0, batch=b_block),
        )
        assert fingerprint(run_engine(base)) == fingerprint(run_engine(other))

    def test_batched_uniform_matches_across_blocks(self):
        base = BASE.with_(delay=DelaySpec.uniform(0.05, 0.5, batch=1))
        other = BASE.with_(delay=DelaySpec.uniform(0.05, 0.5, batch=512))
        assert fingerprint(run_engine(base)) == fingerprint(run_engine(other))

    def test_batched_runs_are_seed_deterministic(self):
        scenario = BASE.with_(
            loss=LossSpec.bernoulli(0.2, batch=128),
            delay=DelaySpec.exponential(mean=0.3, cap=4.0, batch=128),
        )
        assert fingerprint(run_engine(scenario)) == fingerprint(run_engine(scenario))


class TestFastPathEdgeCases:
    def test_no_loopback_fast_path_builds_no_self_channels(self):
        """The broadcast fast path must not instantiate the src->src channel
        when loopback is disabled (broadcast() never does)."""
        from repro.network.fair_lossy import FairLossyChannelFactory
        from repro.network.network import Network

        network = Network(
            3, FairLossyChannelFactory(), loopback_delivers=False
        )
        outcomes = network.broadcast_fast(0, "m", 0.0)
        assert [dst for dst, _ in outcomes] == [1, 2]
        assert (0, 0) not in network.channels

    def test_metrics_level_setter_refreshes_fast_flags(self):
        collector = MetricsCollector()
        assert collector.active
        collector.level = MetricsLevel.OFF
        assert not collector.active
        collector.on_send(1.0, 0, "MSG")
        assert collector.total_sends == 0
        collector.level = MetricsLevel.FULL
        collector.on_send(1.0, 0, "MSG")
        assert collector.total_sends == 1
        assert collector.send_timeline == [(1.0, 1)]
