"""Unit tests for workload generators."""

import random

import pytest

from repro.simulation.events import BroadcastCommand
from repro.workloads.base import ExplicitWorkload
from repro.workloads.generators import (
    AllToAll,
    BurstWorkload,
    PoissonStream,
    SingleBroadcast,
    UniformStream,
    default_content_factory,
)


class TestExplicitWorkload:
    def test_sorted_by_time(self):
        workload = ExplicitWorkload(
            [
                BroadcastCommand(time=5.0, sender=1, content="b"),
                BroadcastCommand(time=1.0, sender=0, content="a"),
            ]
        )
        assert [c.content for c in workload] == ["a", "b"]

    def test_len_and_contents(self):
        workload = ExplicitWorkload(
            [BroadcastCommand(time=0.0, sender=0, content="a")]
        )
        assert len(workload) == 1
        assert workload.contents() == ["a"]

    def test_describe(self):
        workload = ExplicitWorkload([])
        assert "0" in workload.describe()


class TestSingleBroadcast:
    def test_single_command(self):
        workload = SingleBroadcast(sender=2, time=3.0, content="x")
        commands = workload.commands()
        assert len(commands) == 1
        assert commands[0].sender == 2
        assert commands[0].time == 3.0
        assert commands[0].content == "x"

    def test_senders_and_last_time(self):
        workload = SingleBroadcast(sender=2, time=3.0)
        assert workload.senders() == {2}
        assert workload.last_broadcast_time() == 3.0


class TestAllToAll:
    def test_every_process_broadcasts_once(self):
        workload = AllToAll(4)
        assert workload.senders() == {0, 1, 2, 3}
        assert len(workload) == 4

    def test_spacing(self):
        workload = AllToAll(3, start=1.0, spacing=2.0)
        assert [c.time for c in workload] == [1.0, 3.0, 5.0]

    def test_distinct_contents(self):
        workload = AllToAll(5)
        assert len(set(workload.contents())) == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AllToAll(0)
        with pytest.raises(ValueError):
            AllToAll(3, spacing=-1.0)


class TestUniformStream:
    def test_interval_and_rotation(self):
        workload = UniformStream(4, senders=(0, 1), start=2.0, interval=3.0)
        commands = workload.commands()
        assert [c.time for c in commands] == [2.0, 5.0, 8.0, 11.0]
        assert [c.sender for c in commands] == [0, 1, 0, 1]

    def test_contents_unique(self):
        workload = UniformStream(6, senders=(0,))
        assert len(set(workload.contents())) == 6

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            UniformStream(0)
        with pytest.raises(ValueError):
            UniformStream(2, senders=())
        with pytest.raises(ValueError):
            UniformStream(2, interval=-1.0)


class TestPoissonStream:
    def test_count_and_monotone_times(self):
        workload = PoissonStream(20, n_processes=4, rate=1.0, rng=random.Random(0))
        times = [c.time for c in workload]
        assert len(times) == 20
        assert times == sorted(times)

    def test_senders_within_range(self):
        workload = PoissonStream(50, n_processes=3, rate=2.0, rng=random.Random(1))
        assert workload.senders() <= {0, 1, 2}

    def test_deterministic_given_rng(self):
        a = PoissonStream(10, 3, 1.0, random.Random(5))
        b = PoissonStream(10, 3, 1.0, random.Random(5))
        assert [c.time for c in a] == [c.time for c in b]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PoissonStream(0, 3, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            PoissonStream(3, 0, 1.0, random.Random(0))
        with pytest.raises(ValueError):
            PoissonStream(3, 3, 0.0, random.Random(0))


class TestBurstWorkload:
    def test_all_at_same_time(self):
        workload = BurstWorkload(5, sender=1, time=4.0)
        assert all(c.time == 4.0 for c in workload)
        assert workload.senders() == {1}

    def test_multiple_senders_rotate(self):
        workload = BurstWorkload(4, senders=(0, 1))
        assert [c.sender for c in workload.commands()] == [0, 1, 0, 1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BurstWorkload(0)
        with pytest.raises(ValueError):
            BurstWorkload(2, sender=None, senders=None)


class TestContentFactory:
    def test_default_factory(self):
        assert default_content_factory(3) == "m3"

    def test_custom_factory(self):
        workload = AllToAll(2, content_factory=lambda k: ("msg", k))
        assert workload.contents() == [("msg", 0), ("msg", 1)]
