"""Distributed tracing: context propagation, span records, tree merge,
skew normalisation and Chrome export."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import tracing


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    obs.set_timeline(None)
    yield
    obs.reset()
    obs.set_timeline(None)


def _sink():
    stream = io.StringIO()
    obs.set_timeline(obs.Timeline(stream))
    return stream


def _records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestTraceContext:
    def test_child_keeps_trace_id_and_parents_correctly(self):
        root = obs.mint_context()
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id
        assert len(child.span_id) == 16

    def test_mint_is_unique(self):
        a, b = obs.mint_context(), obs.mint_context()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id

    def test_save_load_roundtrip(self, tmp_path):
        context = obs.mint_context()
        obs.save_context(tmp_path / "obs", context, job="j")
        loaded = obs.load_context(tmp_path / "obs")
        assert loaded == tracing.TraceContext(context.trace_id,
                                              context.span_id)
        meta = tracing.load_context_meta(tmp_path / "obs")
        assert meta["job"] == "j"
        assert meta["trace_version"] == tracing.TRACE_VERSION

    def test_load_missing_returns_none(self, tmp_path):
        assert obs.load_context(tmp_path) is None

    def test_load_rejects_foreign_version(self, tmp_path):
        obs.save_context(tmp_path, obs.mint_context())
        path = tmp_path / tracing.TRACE_FILE
        data = json.loads(path.read_text())
        data["trace_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="trace_version"):
            obs.load_context(tmp_path)


class TestSpanRecording:
    def test_span_is_noop_without_context(self):
        stream = _sink()
        with obs.span("work") as handle:
            assert handle is None
        assert stream.getvalue() == ""

    def test_span_emits_span_kind_with_ids(self):
        stream = _sink()
        context = obs.mint_context()
        obs.set_context(context)
        obs.set_process_name("p1")
        with obs.span("work", detail=7) as handle:
            assert handle.context.trace_id == context.trace_id
        (record,) = _records(stream)
        assert record["kind"] == "span"
        assert record["trace_id"] == context.trace_id
        assert record["parent_span_id"] == context.span_id
        assert record["name"] == "work"
        assert record["proc"] == "p1"
        assert record["status"] == "ok"
        assert record["detail"] == 7
        assert record["end_unix"] >= record["start_unix"]

    def test_nested_spans_parent_into_a_chain(self):
        stream = _sink()
        obs.set_context(obs.mint_context())
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = _records(stream)
        assert inner["name"] == "inner"
        assert inner["parent_span_id"] == outer["span_id"]

    def test_span_error_records_status_and_reraises(self):
        stream = _sink()
        obs.set_context(obs.mint_context())
        with pytest.raises(ValueError, match="boom"):
            with obs.span("work"):
                raise ValueError("boom")
        (record,) = _records(stream)
        assert record["status"] == "error"
        assert "ValueError" in record["error"]

    def test_annotate_lands_on_the_record(self):
        stream = _sink()
        obs.set_context(obs.mint_context())
        with obs.span("cell") as handle:
            handle.annotate(outcome="cached")
        (record,) = _records(stream)
        assert record["outcome"] == "cached"

    def test_threads_parent_under_their_own_chain(self):
        stream = _sink()
        obs.set_context(obs.mint_context())

        def worker(name):
            obs.set_process_name(name)
            with obs.span("worker"):
                with obs.span("cell"):
                    pass

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = _records(stream)
        workers = {r["span_id"]: r for r in records
                   if r["name"] == "worker"}
        cells = [r for r in records if r["name"] == "cell"]
        assert len(workers) == 2 and len(cells) == 2
        for cell in cells:
            # Each cell is parented to the worker span of its own thread.
            assert workers[cell["parent_span_id"]]["proc"] == cell["proc"]


class TestPhaseUpgrade:
    def test_phase_without_context_stays_phase_kind(self):
        stream = _sink()
        with obs.phase("expand"):
            pass
        (record,) = _records(stream)
        assert record["kind"] == "phase"
        assert record["name"] == "expand"

    def test_phase_with_context_becomes_span(self):
        stream = _sink()
        obs.set_context(obs.mint_context())
        with obs.phase("expand"):
            pass
        (record,) = _records(stream)
        assert record["kind"] == "span"
        assert record["name"] == "expand"
        assert "trace_id" in record and "span_id" in record

    def test_phase_error_still_reraises_as_span(self):
        stream = _sink()
        obs.set_context(obs.mint_context())
        with pytest.raises(RuntimeError):
            with obs.phase("execute"):
                raise RuntimeError("dead")
        (record,) = _records(stream)
        assert record["kind"] == "span"
        assert record["status"] == "error"


class TestTreeReconstruction:
    def _span(self, span_id, parent, name="s", proc="p", start=0.0,
              end=1.0, trace="t1", **fields):
        return {"kind": "span", "trace_id": trace, "span_id": span_id,
                "parent_span_id": parent, "name": name, "proc": proc,
                "status": "ok", "start_unix": start, "end_unix": end,
                "wall_seconds": end - start, "cpu_seconds": 0.0, **fields}

    def test_build_tree_parents_and_orders(self):
        records = [
            self._span("root", None, name="job", end=10.0),
            self._span("w", "root", name="worker", start=1.0, end=9.0),
            self._span("c2", "w", name="cell", start=5.0, end=6.0),
            self._span("c1", "w", name="cell", start=2.0, end=3.0),
        ]
        tree = tracing.build_tree(records)
        assert tree.span_count == 4
        assert not tree.orphans
        (root,) = tree.roots
        assert root.name == "job"
        worker = root.children[0]
        assert [c.span_id for c in worker.children] == ["c1", "c2"]

    def test_orphans_are_surfaced_not_dropped(self):
        records = [self._span("lost", "missing-parent", name="cell")]
        tree = tracing.build_tree(records)
        assert len(tree.orphans) == 1
        assert tree.orphans[0].orphaned
        assert tree.roots  # still visible as a root

    def test_dominant_trace_selected_and_explicit_id_respected(self):
        records = [self._span("a", None, trace="t1"),
                   self._span("b", None, trace="t2"),
                   self._span("c", "b", trace="t2")]
        assert tracing.build_tree(records).trace_id == "t2"
        assert tracing.build_tree(records, trace_id="t1").span_count == 1
        with pytest.raises(ValueError, match="not present"):
            tracing.build_tree(records, trace_id="t9")

    def test_critical_path_follows_latest_finishers(self):
        records = [
            self._span("root", None, name="job", end=10.0),
            self._span("fast", "root", name="worker", start=1.0, end=2.0),
            self._span("slow", "root", name="worker", start=1.0, end=9.0),
            self._span("tail", "slow", name="cell", start=8.0, end=9.0),
        ]
        path = tracing.build_tree(records).critical_path()
        assert [n.span_id for n in path] == ["root", "slow", "tail"]

    def test_skew_offsets_only_shift_proven_violations(self):
        anchors = [
            {"worker": "ahead", "worker_unix": 105.0,
             "observed_unix": 100.0},
            {"worker": "ahead", "worker_unix": 103.0,
             "observed_unix": 100.0},
            {"worker": "fine", "worker_unix": 99.0, "observed_unix": 100.0},
        ]
        offsets = tracing.skew_offsets(anchors)
        assert offsets == {"ahead": 5.0}

    def test_offsets_applied_to_that_process_only(self):
        records = [self._span("a", None, proc="coordinator", start=10.0,
                              end=20.0),
                   self._span("b", "a", proc="w1", start=15.0, end=16.0)]
        tree = tracing.build_tree(records, {"w1": 2.0})
        assert tree.by_id["b"].start_unix == 13.0
        assert tree.by_id["a"].start_unix == 10.0

    def test_load_trace_discovers_jobdir_and_mixes_files(self, tmp_path):
        obs_dir = tmp_path / "job" / "obs" / "w1"
        obs_dir.mkdir(parents=True)
        (obs_dir / "timeline.jsonl").write_text(
            json.dumps(self._span("w", "root", name="worker")) + "\n")
        extra = tmp_path / "coordinator.jsonl"
        extra.write_text(
            json.dumps(self._span("root", None, name="job")) + "\n")
        tree = tracing.load_trace([tmp_path / "job", extra])
        assert tree.span_count == 2
        assert not tree.orphans

    def test_load_trace_empty_dir_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no span files"):
            tracing.load_trace(tmp_path)

    def test_chrome_export_shape(self):
        records = [self._span("root", None, name="job", start=5.0,
                              end=6.0)]
        tree = tracing.build_tree(records)
        events = tracing.chrome_trace_events(tree)
        complete = [e for e in events if e["ph"] == "X"]
        (event,) = complete
        assert event["ts"] == 0.0
        assert event["dur"] == pytest.approx(1e6)
        assert event["args"]["span_id"] == "root"


class TestResetHygiene:
    def test_reset_clears_context_and_process_name(self):
        obs.set_context(obs.mint_context())
        obs.set_process_name("w9")
        obs.reset()
        assert obs.current_context() is None
        assert not obs.tracing_active()
        assert tracing.process_name().startswith("proc-")
