"""Engine-backend registry and vectorized/reference parity tests.

The ``engines`` registry's contract is that a backend is a dispatch
strategy, never a semantics change: every backend must be bit-identical to
``reference`` on the parity battery, must silently fall back to per-event
dispatch whenever per-copy observability is required (controllers, hooks,
FULL traces), and must round-trip through scenario serialisation like any
other registry-named component.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments.config import Scenario
from repro.experiments.parity import (
    compare_engines,
    fingerprint,
    parity_cases,
    run_fingerprint,
)
from repro.experiments.runner import build_engine
from repro.explore.serialize import scenario_from_dict, scenario_to_dict
from repro.registry import (
    UnknownComponentError,
    all_registries,
    engine_names,
    engines,
    get_engine,
)
from repro.simulation import vectorized
from repro.simulation.backends import VectorizedEngine
from repro.simulation.engine import SimulationEngine
from repro.simulation.tracing import TraceLevel

CASES = {scenario.name: scenario for scenario in parity_cases()}


# --------------------------------------------------------------------------- #
# registry surface
# --------------------------------------------------------------------------- #
def test_engines_registry_contents():
    names = engine_names()
    assert "reference" in names
    assert "vectorized" in names
    assert get_engine("reference").batched is False
    assert get_engine("vectorized").batched is True
    engine = build_engine(Scenario(name="vec", algorithm="algorithm1",
                                   n_processes=3, max_time=10.0,
                                   engine="vectorized"))
    assert type(engine) is VectorizedEngine


def test_engines_registry_in_all_registries():
    registries = all_registries()
    assert registries["Engine backends"] is engines


def test_unknown_engine_name_raises_registry_error():
    with pytest.raises(UnknownComponentError):
        engines.get("warp-drive")
    with pytest.raises(UnknownComponentError):
        Scenario(name="bad", algorithm="algorithm1", engine="warp-drive")


def test_reference_engine_factory_is_the_reference_class():
    engine = build_engine(Scenario(name="ref", algorithm="algorithm1",
                                   n_processes=3, max_time=10.0))
    assert type(engine) is SimulationEngine


# --------------------------------------------------------------------------- #
# bit-identical parity across the battery
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", sorted(CASES))
def test_vectorized_matches_reference(name):
    report = compare_engines(CASES[name])
    modes = {run.engine: run.dispatch_mode for run in report.runs}
    assert report.ok, report.diff()
    # The comparison must not be vacuous: the vectorized run has to take
    # its batched path (these scenarios attach no controller/hooks and the
    # parity runner keeps traces at DELIVERIES level).
    assert modes["vectorized"] == "batched"


def test_small_sample_block_is_bit_identical(monkeypatch):
    # Tiny prefetch blocks force mid-run refills of the loss matrix and the
    # per-channel delay columns; results must not depend on block size.
    monkeypatch.setattr(vectorized, "SAMPLE_BLOCK", 3)
    scenario = CASES["bernoulli-uniform"]
    report = compare_engines(scenario)
    assert report.ok, report.diff()


# --------------------------------------------------------------------------- #
# per-event fallbacks
# --------------------------------------------------------------------------- #
def test_controller_forces_per_event_dispatch_with_parity():
    scenario = CASES["bernoulli-uniform"].with_(
        explore_strategy="random_walk", explore_index=0, max_time=40.0,
    )
    results = {}
    for engine in ("reference", "vectorized"):
        built = build_engine(scenario.with_(engine=engine))
        assert built.controller is not None
        results[engine] = (built, fingerprint(built.run()))
    vec_engine, vec_fp = results["vectorized"]
    assert vec_engine.dispatch_mode == "per-event"
    assert vec_fp == results["reference"][1]


def test_full_trace_forces_per_event_dispatch_with_parity():
    run = run_fingerprint(CASES["bernoulli-uniform"], "vectorized",
                          trace_level=TraceLevel.FULL)
    assert run.dispatch_mode == "per-event"
    reference = run_fingerprint(CASES["bernoulli-uniform"], "reference",
                                trace_level=TraceLevel.FULL)
    assert run.fingerprint == reference.fingerprint


def test_hooks_force_per_event_dispatch():
    from repro.simulation.hooks import DeliveryTimelineHook

    scenario = CASES["bernoulli-uniform"].with_(engine="vectorized",
                                                hooks=(DeliveryTimelineHook(),))
    engine = build_engine(scenario)
    engine.run()
    assert engine.dispatch_mode == "per-event"


# --------------------------------------------------------------------------- #
# fallback reasons: one test per _fallback_reason() branch, each asserting
# the mode attributes AND the repro_engine_fallback_total reason label
# --------------------------------------------------------------------------- #
@pytest.fixture()
def obs_on():
    obs.reset()
    obs.enable()
    yield
    obs.reset()


def _fallback_count(reason):
    counter = obs.REGISTRY.get("repro_engine_fallback_total")
    assert counter is not None, "fallback counter never created"
    return counter.value(reason=reason)


def test_controller_fallback_reason_counted(obs_on):
    scenario = CASES["bernoulli-uniform"].with_(
        explore_strategy="random_walk", explore_index=0, max_time=40.0)
    run = run_fingerprint(scenario, "vectorized")
    assert run.dispatch_mode == "per-event"
    assert run.consume_mode is None
    assert _fallback_count("controller") == 1


def test_hooks_fallback_reason_counted(obs_on):
    from repro.simulation.hooks import DeliveryTimelineHook

    scenario = CASES["bernoulli-uniform"].with_(
        hooks=(DeliveryTimelineHook(),))
    run = run_fingerprint(scenario, "vectorized")
    assert run.dispatch_mode == "per-event"
    assert run.consume_mode is None
    assert _fallback_count("hooks") == 1


def test_full_trace_fallback_reason_counted(obs_on):
    run = run_fingerprint(CASES["bernoulli-uniform"], "vectorized",
                          trace_level=TraceLevel.FULL)
    assert run.dispatch_mode == "per-event"
    assert run.consume_mode is None
    assert _fallback_count("full_trace") == 1


def test_no_positive_min_delay_falls_back_to_boxed_consumption(obs_on):
    # Exponential delays are unbounded below: no positive slice window, so
    # dispatch stays batched but deliveries are consumed boxed per-entry.
    run = run_fingerprint(CASES["bernoulli-exponential"], "vectorized")
    assert run.dispatch_mode == "batched"
    assert run.consume_mode == "boxed"
    assert _fallback_count("no_positive_min_delay") == 1


def test_batched_receiver_records_consumed_and_width(obs_on):
    run = run_fingerprint(CASES["bernoulli-uniform"], "vectorized")
    assert run.dispatch_mode == "batched"
    assert run.consume_mode == "batched"
    fallbacks = obs.REGISTRY.get("repro_engine_fallback_total")
    assert fallbacks is None or not any(v for _, v in fallbacks.samples())
    consumed = obs.REGISTRY.get("repro_engine_batched_consumed_total")
    assert consumed is not None and consumed.value() > 0
    width = obs.REGISTRY.get("repro_engine_consume_width")
    ((_, (_, _, count)),) = width.samples()
    assert count > 0


# --------------------------------------------------------------------------- #
# scenario serialisation
# --------------------------------------------------------------------------- #
def test_explicit_engine_round_trips_through_serialize():
    scenario = CASES["bernoulli-uniform"].with_(engine="vectorized")
    data = scenario_to_dict(scenario)
    assert data["engine"] == "vectorized"
    assert scenario_from_dict(data) == scenario


def test_default_engine_is_omitted_and_old_dicts_default_to_reference():
    scenario = CASES["bernoulli-uniform"]
    data = scenario_to_dict(scenario)
    assert "engine" not in data
    # Dicts written before the engines registry existed carry no key at
    # all; they must deserialise to the reference backend.
    assert scenario_from_dict(data).engine == "reference"
