"""Unit tests for the simulation engine, process environment and hooks,
driven with tiny hand-assembled runs."""

import pytest

from repro.core.algorithm1 import MajorityUrbProcess
from repro.core.baselines import BestEffortBroadcastProcess
from repro.core.messages import MsgPayload
from repro.network.delay import DelaySpec
from repro.network.fair_lossy import FairLossyChannelFactory
from repro.network.loss import LossSpec
from repro.network.network import Network
from repro.simulation.config import SimulationConfig, StopConditions
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import BroadcastCommand, EventKind
from repro.simulation.faults import CrashSchedule
from repro.simulation.hooks import (
    CrashOnDeliveryHook,
    DeliveryTimelineHook,
    EngineHook,
    SendBudgetHook,
)
from repro.simulation.rng import RandomSource
from repro.simulation.tracing import TraceCategory


def build_engine(n=3, *, loss=None, crashes=None, workload=None, max_time=30.0,
                 stop=None, hooks=(), algorithm="algorithm1", seed=0,
                 tick_interval=1.0):
    config = SimulationConfig(
        n_processes=n, max_time=max_time, seed=seed,
        tick_interval=tick_interval,
        stop=stop or StopConditions(),
    )
    network = Network(
        n,
        FairLossyChannelFactory(loss_spec=loss or LossSpec.none(),
                                delay_spec=DelaySpec.fixed(0.25)),
        RandomSource(seed),
    )
    if algorithm == "algorithm1":
        factory = lambda index, env: MajorityUrbProcess(env, n)  # noqa: E731
    else:
        factory = lambda index, env: BestEffortBroadcastProcess(env)  # noqa: E731
    return SimulationEngine(
        config=config,
        network=network,
        process_factory=factory,
        crash_schedule=CrashSchedule.crash_at(n, crashes or {}),
        workload=workload if workload is not None
        else [BroadcastCommand(time=0.0, sender=0, content="m0")],
        hooks=hooks,
    )


class TestEngineBasics:
    def test_run_produces_deliveries(self):
        result = build_engine().run()
        assert result.metrics.deliveries == 3
        for index in range(3):
            assert result.deliveries_of(index) == ["m0"]

    def test_result_metadata(self):
        result = build_engine().run()
        assert result.n_processes == 3
        assert result.expected_contents == ("m0",)
        assert result.final_time <= result.config.max_time
        assert "run(" in result.describe()

    def test_network_size_mismatch_rejected(self):
        config = SimulationConfig(n_processes=3)
        network = Network(4, FairLossyChannelFactory(), RandomSource(0))
        with pytest.raises(ValueError):
            SimulationEngine(config, network, lambda i, e: BestEffortBroadcastProcess(e))

    def test_crash_schedule_size_mismatch_rejected(self):
        config = SimulationConfig(n_processes=3)
        network = Network(3, FairLossyChannelFactory(), RandomSource(0))
        with pytest.raises(ValueError):
            SimulationEngine(
                config, network, lambda i, e: BestEffortBroadcastProcess(e),
                crash_schedule=CrashSchedule.none(5),
            )

    def test_workload_sender_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            build_engine(workload=[BroadcastCommand(time=0.0, sender=9, content="x")])

    def test_trace_contains_broadcast_send_deliver(self):
        result = build_engine().run()
        assert result.trace.count(TraceCategory.URB_BROADCAST) == 1
        assert result.trace.count(TraceCategory.SEND) > 0
        assert result.trace.count(TraceCategory.URB_DELIVER) == 3

    def test_event_stats_populated(self):
        result = build_engine().run()
        assert result.event_stats.dispatched[EventKind.BROADCAST_REQUEST] == 1
        assert result.event_stats.dispatched[EventKind.RECEIVE] > 0

    def test_runs_to_horizon_without_stop_condition(self):
        result = build_engine(max_time=12.0).run()
        assert result.stop_reason == "horizon"
        assert result.final_time <= 12.0


class TestCrashHandling:
    def test_crashed_process_stops_participating(self):
        result = build_engine(crashes={2: 0.0}).run()
        # The initially crashed process never delivers and never sends.
        assert result.deliveries_of(2) == []
        assert result.metrics.sends_by_process.get(2, 0) == 0
        assert result.trace.count(TraceCategory.CRASH) == 1

    def test_late_crash_after_delivery_keeps_delivery(self):
        result = build_engine(crashes={2: 20.0}, max_time=25.0).run()
        assert result.deliveries_of(2) == ["m0"]

    def test_crash_now_is_idempotent(self):
        engine = build_engine()
        engine.crash_now(1)
        engine.crash_now(1)
        assert engine.is_crashed(1)
        assert engine.alive_indices() == (0, 2)

    def test_messages_to_crashed_process_are_discarded(self):
        result = build_engine(crashes={1: 0.0}).run()
        deliveries_to_crashed = [
            e for e in result.trace.filter(category=TraceCategory.CHANNEL_DELIVER)
            if e.process == 1
        ]
        assert deliveries_to_crashed == []


class TestEarlyStop:
    def test_stop_when_all_correct_delivered(self):
        stop = StopConditions(stop_when_all_correct_delivered=True)
        result = build_engine(stop=stop, max_time=200.0).run()
        assert result.stop_reason == "all correct delivered"
        assert result.final_time < 200.0

    def test_grace_period_extends_run(self):
        fast = build_engine(
            stop=StopConditions(stop_when_all_correct_delivered=True),
            max_time=200.0,
        ).run()
        slow = build_engine(
            stop=StopConditions(stop_when_all_correct_delivered=True,
                                drain_grace_period=10.0),
            max_time=200.0,
        ).run()
        assert slow.final_time >= fast.final_time + 5.0

    def test_stop_when_quiescent_with_best_effort(self):
        # Best-effort broadcast stops sending after the initial transmission,
        # so the quiescence predicate fires almost immediately.
        stop = StopConditions(stop_when_quiescent=True)
        result = build_engine(algorithm="best_effort", stop=stop,
                              max_time=100.0).run()
        assert result.stop_reason == "quiescent"
        assert result.final_time < 20.0

    def test_algorithm1_never_triggers_quiescence_stop(self):
        stop = StopConditions(stop_when_quiescent=True)
        result = build_engine(stop=stop, max_time=15.0).run()
        assert result.stop_reason == "horizon"

    def test_request_stop(self):
        engine = build_engine(max_time=50.0)
        engine.request_stop("manual")
        result = engine.run()
        assert result.stop_reason == "manual"


class TestAnonymityOfEnvironment:
    def test_process_receives_payload_not_envelope(self):
        received = []

        class Probe(BestEffortBroadcastProcess):
            def on_receive(self, payload):
                received.append(payload)
                super().on_receive(payload)

        config = SimulationConfig(n_processes=2, max_time=5.0)
        network = Network(2, FairLossyChannelFactory(delay_spec=DelaySpec.fixed(0.1)),
                          RandomSource(0))
        engine = SimulationEngine(
            config=config, network=network,
            process_factory=lambda i, env: Probe(env),
            workload=[BroadcastCommand(time=0.0, sender=0, content="m")],
        )
        engine.run()
        assert received
        assert all(isinstance(p, MsgPayload) for p in received)
        # The payload itself carries no sender information.
        assert not any(hasattr(p, "src") for p in received)

    def test_environment_views_empty_without_detectors(self):
        engine = build_engine()
        assert engine.atheta_view(0).is_empty()
        assert engine.apstar_view(0).is_empty()

    def test_broadcast_from_crashed_process_is_dropped(self):
        engine = build_engine()
        engine.crash_now(0)
        engine.broadcast_from(0, "anything")
        assert engine.metrics.total_sends == 0


class TestHooks:
    def test_delivery_timeline_hook_records(self):
        hook = DeliveryTimelineHook()
        build_engine(hooks=(hook,)).run()
        assert len(hook.deliveries) == 3
        assert all(content == "m0" for _, _, content in hook.deliveries)

    def test_crash_on_delivery_hook(self):
        hook = CrashOnDeliveryHook(targets={0})
        result = build_engine(hooks=(hook,), max_time=40.0).run()
        assert len(hook.crashes) == 1
        assert hook.crashes[0][0] == 0
        # Process 0 delivered exactly once (it crashed right afterwards).
        assert result.deliveries_of(0) == ["m0"]

    def test_crash_on_delivery_hook_all_targets(self):
        hook = CrashOnDeliveryHook()
        result = build_engine(hooks=(hook,), max_time=40.0).run()
        assert len(hook.crashes) == 3

    def test_send_budget_hook_stops_run(self):
        hook = SendBudgetHook(max_sends=10)
        result = build_engine(hooks=(hook,), max_time=100.0).run()
        assert hook.exceeded
        assert result.stop_reason == "send budget exceeded"

    def test_send_budget_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            SendBudgetHook(0)

    def test_base_hook_callbacks_are_noops(self):
        # The default EngineHook must be safe to install as-is.
        result = build_engine(hooks=(EngineHook(),)).run()
        assert result.metrics.deliveries == 3

    def test_run_start_and_end_called(self):
        calls = []

        class Recorder(EngineHook):
            def on_run_start(self, engine):
                calls.append("start")

            def on_run_end(self, engine, now):
                calls.append("end")

        build_engine(hooks=(Recorder(),)).run()
        assert calls == ["start", "end"]


class TestDeterminism:
    def test_same_seed_same_trace_length_and_deliveries(self):
        a = build_engine(loss=LossSpec.bernoulli(0.3), seed=5).run()
        b = build_engine(loss=LossSpec.bernoulli(0.3), seed=5).run()
        assert a.metrics.total_sends == b.metrics.total_sends
        assert len(a.trace) == len(b.trace)
        assert [a.deliveries_of(i) for i in range(3)] == [
            b.deliveries_of(i) for i in range(3)
        ]

    def test_different_seed_changes_run(self):
        a = build_engine(loss=LossSpec.bernoulli(0.3), seed=5, max_time=10.0).run()
        b = build_engine(loss=LossSpec.bernoulli(0.3), seed=6, max_time=10.0).run()
        assert a.metrics.total_drops != b.metrics.total_drops
