"""Unit tests for the benchmark harness subsystem (benchmarks/harness.py)."""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def harness():
    spec = importlib.util.spec_from_file_location(
        "bench_harness_under_test", REPO_ROOT / "benchmarks" / "harness.py"
    )
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves string annotations through sys.modules, so the
    # module must be registered before execution.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def make_result(harness, name="dummy", events_per_sec=1000.0, **overrides):
    kwargs = dict(
        name=name,
        wall_time_s=1.0,
        events=int(events_per_sec),
        events_per_sec=events_per_sec,
        ops=10,
        ops_per_sec=10.0,
        peak_rss_kb=1024,
        calibration_mops=1.0,
        quick=True,
    )
    kwargs.update(overrides)
    return harness.BenchResult(**kwargs)


class TestBenchResult:
    def test_normalized_score_divides_by_calibration(self, harness):
        result = make_result(harness, events_per_sec=500.0, calibration_mops=2.0)
        assert result.normalized_score == pytest.approx(250.0)

    def test_as_dict_schema(self, harness):
        data = make_result(harness).as_dict()
        for key in (
            "schema_version", "name", "wall_time_s", "events",
            "events_per_sec", "ops", "ops_per_sec", "peak_rss_kb",
            "normalized_score", "quick", "python", "platform", "meta",
        ):
            assert key in data

    def test_write_emits_bench_json(self, harness, tmp_path):
        path = make_result(harness, name="abc").write(tmp_path)
        assert path.name == "BENCH_abc.json"
        assert json.loads(path.read_text())["name"] == "abc"


class TestBaselineCompare:
    def test_regression_detected_beyond_tolerance(self, harness):
        baseline = {"dummy": make_result(harness, events_per_sec=1000.0).as_dict()}
        current = [make_result(harness, events_per_sec=700.0)]
        comparisons = harness.compare_to_baseline(
            current, baseline, tolerance=0.25
        )
        assert len(comparisons) == 1
        assert comparisons[0].regressed

    def test_within_tolerance_passes(self, harness):
        baseline = {"dummy": make_result(harness, events_per_sec=1000.0).as_dict()}
        current = [make_result(harness, events_per_sec=800.0)]
        (comparison,) = harness.compare_to_baseline(
            current, baseline, tolerance=0.25
        )
        assert not comparison.regressed

    def test_improvement_passes(self, harness):
        baseline = {"dummy": make_result(harness, events_per_sec=1000.0).as_dict()}
        current = [make_result(harness, events_per_sec=2000.0)]
        (comparison,) = harness.compare_to_baseline(current, baseline)
        assert not comparison.regressed
        assert comparison.ratio == pytest.approx(2.0)

    def test_scenarios_missing_from_baseline_are_skipped(self, harness):
        current = [make_result(harness, name="brand_new")]
        assert harness.compare_to_baseline(current, {}) == []

    def test_mode_mismatch_is_skipped(self, harness):
        # A quick run must not be gated against a full-size baseline entry
        # (different problem sizes), and vice versa.
        full_baseline = {
            "dummy": make_result(harness, events_per_sec=1000.0,
                                 quick=False).as_dict()
        }
        quick_run = [make_result(harness, events_per_sec=100.0, quick=True)]
        assert harness.compare_to_baseline(quick_run, full_baseline) == []
        full_run = [make_result(harness, events_per_sec=900.0, quick=False)]
        (comparison,) = harness.compare_to_baseline(full_run, full_baseline)
        assert not comparison.regressed

    def test_wall_time_fallback_for_experiment_scenarios(self, harness):
        baseline = {
            "exp": make_result(
                harness, name="exp", events=0, events_per_sec=0.0,
                wall_time_s=2.0,
            ).as_dict()
        }
        slower = [
            make_result(harness, name="exp", events=0, events_per_sec=0.0,
                        wall_time_s=4.0)
        ]
        (comparison,) = harness.compare_to_baseline(
            slower, baseline, tolerance=0.25
        )
        assert comparison.regressed

    def test_wall_time_fallback_is_calibration_normalized(self, harness):
        """Equal wall time on a machine half as fast is an improvement,
        not a regression."""
        baseline = {
            "exp": make_result(
                harness, name="exp", events=0, events_per_sec=0.0,
                wall_time_s=2.0, calibration_mops=2.0,
            ).as_dict()
        }
        current = [
            make_result(harness, name="exp", events=0, events_per_sec=0.0,
                        wall_time_s=2.0, calibration_mops=1.0)
        ]
        (comparison,) = harness.compare_to_baseline(
            current, baseline, tolerance=0.25
        )
        assert not comparison.regressed
        assert comparison.ratio == pytest.approx(2.0)

    def test_save_and_load_roundtrip(self, harness, tmp_path):
        path = tmp_path / "baseline.json"
        harness.save_baseline(path, [make_result(harness, name="x")])
        loaded = harness.load_baseline(path)
        assert "x" in loaded
        assert loaded["x"]["events_per_sec"] == 1000.0


class TestRunBenchmark:
    def test_registry_has_required_scenarios(self, harness):
        for name in (
            "quiescence_large_n", "flood_horizon", "lossy_channels",
            "lossy_batched", "tracing_full", "event_queue_churn",
            "explore_quick",
        ):
            assert name in harness.BENCH_SCENARIOS
        assert len(harness.default_scenario_names()) >= 4

    def test_explorer_throughput_is_regression_gated(self, harness):
        # explore_quick must be in the default (CI) set AND have a committed
        # baseline entry, otherwise compare_to_baseline silently skips it.
        assert "explore_quick" in harness.default_scenario_names()
        baseline = harness.load_baseline(harness.DEFAULT_BASELINE)
        assert "explore_quick" in baseline
        assert baseline["explore_quick"]["normalized_score"] > 0

    def test_vectorized_quiescence_has_a_full_size_baseline_entry(
            self, harness):
        # The ROADMAP perf target is stated on the *full* load (n=40): the
        # committed baseline must gate full runs, not the CI quick size.
        baseline = harness.load_baseline(harness.DEFAULT_BASELINE)
        assert "quiescence_vectorized" in baseline
        entry = baseline["quiescence_vectorized"]
        assert entry["quick"] is False
        assert entry["events_per_sec"] >= 200_000
        assert entry["peak_rss_kb"] < 200 * 1024

    def test_run_benchmark_produces_normalized_result(self, harness):
        harness.BENCH_SCENARIOS["_test_dummy"] = harness.BenchSpec(
            name="_test_dummy",
            description="test stub",
            run=lambda quick: (0.5, 100, 10, {"quick": quick}),
            default=False,
        )
        try:
            result = harness.run_benchmark(
                "_test_dummy", quick=True, calibration_mops=2.0
            )
        finally:
            del harness.BENCH_SCENARIOS["_test_dummy"]
        assert result.events_per_sec == pytest.approx(200.0)
        assert result.normalized_score == pytest.approx(100.0)
        assert result.meta["quick"] is True
        assert result.meta["rss_delta_kb"] >= 0
        assert result.peak_rss_kb > 0


class TestBenchScript:
    def test_bench_script_lists_scenarios(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "bench.py"), "--list"],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "quiescence_large_n" in proc.stdout
