"""ddmin over decision lists (pure predicate tests, no simulation)."""

from __future__ import annotations

from repro.explore.shrink import ddmin


class TestDdmin:
    def test_single_culprit_is_isolated(self):
        items = list(range(40))
        minimal, tests = ddmin(items, lambda subset: 17 in subset)
        assert minimal == [17]
        assert tests > 0

    def test_pair_of_culprits(self):
        items = list(range(32))
        minimal, _ = ddmin(items, lambda s: 3 in s and 29 in s)
        assert sorted(minimal) == [3, 29]

    def test_order_preserved(self):
        items = ["a", "b", "c", "d", "e", "f"]
        minimal, _ = ddmin(items, lambda s: "e" in s and "b" in s)
        assert minimal == ["b", "e"]

    def test_everything_needed_returns_input(self):
        items = [1, 2, 3, 4]
        minimal, _ = ddmin(items, lambda s: len(s) == 4)
        assert minimal == items

    def test_budget_caps_tests(self):
        items = list(range(1000))
        minimal, tests = ddmin(items, lambda s: 999 in s, max_tests=5)
        assert tests <= 5
        assert 999 in minimal

    def test_empty_and_singleton_inputs(self):
        assert ddmin([], lambda s: True) == ([], 0)
        assert ddmin([7], lambda s: True) == ([7], 0)

    def test_unlimited_budget(self):
        minimal, _ = ddmin(list(range(64)), lambda s: 10 in s, max_tests=None)
        assert minimal == [10]
