"""Unit tests for the event queue's hot-path machinery: the entry pool,
lazy deletion, and the O(1) pending-count bookkeeping."""

import pytest

from repro.simulation.events import Event, EventKind
from repro.simulation.scheduler import EventQueue, QueuedEvent, SchedulingError


class TestEventPool:
    def test_recycled_entries_are_reused(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK, target=0)
        entry = queue.pop()
        queue.recycle(entry)
        assert queue.pool_size == 1
        again = queue.schedule(2.0, EventKind.RECEIVE, target=3, payload="m")
        assert again is entry  # same object, re-initialised
        assert again.kind is EventKind.RECEIVE
        assert again.target == 3
        assert again.payload == "m"
        assert queue.pool_size == 0

    def test_recycle_clears_payload_reference(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.RECEIVE, target=0, payload={"big": "obj"})
        entry = queue.pop()
        queue.recycle(entry)
        assert entry.payload is None

    def test_unrecycled_entries_stay_valid(self):
        """Callers that never recycle (tests, analysis) keep valid events."""
        queue = EventQueue()
        for target in range(5):
            queue.schedule(1.0, EventKind.TICK, target=target)
        popped = [queue.pop() for _ in range(5)]
        assert [e.target for e in popped] == list(range(5))

    def test_steady_state_allocates_no_new_entries(self):
        queue = EventQueue()
        queue.schedule(0.0, EventKind.TICK, target=0)
        seen = set()
        for i in range(100):
            entry = queue.pop()
            queue.recycle(entry)
            seen.add(id(entry))
            queue.schedule(float(i + 1), EventKind.TICK, target=0)
        assert len(seen) == 1  # one pooled entry services the whole loop


class TestLazyDeletion:
    def test_drop_pending_marks_dead_without_rebuilding(self):
        queue = EventQueue()
        for i in range(10):
            queue.schedule(float(i), EventKind.TICK, target=i)
        queue.schedule(3.5, EventKind.RECEIVE, target=0, payload="x")
        removed = queue.drop_pending(EventKind.TICK)
        assert removed == 10
        assert len(queue) == 1
        assert queue.dead_count == 10
        event = queue.pop()
        assert event.kind is EventKind.RECEIVE
        assert not queue

    def test_dead_entries_skipped_by_peek(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK, target=0)
        queue.schedule(2.0, EventKind.RECEIVE, target=1)
        queue.drop_pending(EventKind.TICK)
        assert queue.peek().kind is EventKind.RECEIVE
        assert queue.peek_time() == 2.0

    def test_iteration_skips_dead_entries(self):
        queue = EventQueue()
        queue.schedule(2.0, EventKind.TICK)
        queue.schedule(1.0, EventKind.RECEIVE, target=0)
        queue.drop_pending(EventKind.TICK)
        assert [e.kind for e in queue] == [EventKind.RECEIVE]

    def test_compaction_after_mass_deletion(self):
        queue = EventQueue()
        for i in range(3000):
            queue.schedule(float(i), EventKind.TICK, target=0)
        queue.schedule(0.5, EventKind.RECEIVE, target=0)
        removed = queue.drop_pending(EventKind.TICK)
        assert removed == 3000
        # Dead entries outnumber live ones beyond the threshold, so the
        # heap is physically compacted.
        assert queue.dead_count == 0
        assert len(queue) == 1
        assert queue.pop().kind is EventKind.RECEIVE


class TestPendingCounts:
    def test_counts_track_schedule_pop_and_drop(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK)
        queue.schedule(1.0, EventKind.TICK)
        queue.schedule(2.0, EventKind.RECEIVE, target=0)
        assert queue.pending_of(EventKind.TICK) == 2
        assert queue.pending_of(EventKind.RECEIVE) == 1
        queue.pop()
        assert queue.pending_of(EventKind.TICK) == 1
        queue.drop_pending(EventKind.TICK)
        assert queue.pending_of(EventKind.TICK) == 0
        assert queue.pending_of(EventKind.RECEIVE) == 1

    def test_pending_by_kind_covers_all_kinds(self):
        queue = EventQueue()
        counts = queue.pending_by_kind()
        assert set(counts) == set(EventKind)
        assert all(v == 0 for v in counts.values())

    def test_push_event_updates_counts(self):
        queue = EventQueue()
        queue.push_event(Event(time=1.0, seq=0, kind=EventKind.CRASH, target=1))
        assert queue.pending_of(EventKind.CRASH) == 1


class TestQueuedEventSurface:
    def test_exposes_event_like_attributes(self):
        queue = EventQueue()
        entry = queue.schedule(1.5, EventKind.RECEIVE, target=2, payload="p")
        assert isinstance(entry, QueuedEvent)
        assert entry.sort_key == (1.5, 0)
        assert "receive" in entry.describe()
        assert "p[2]" in entry.describe()

    def test_ordering(self):
        a = QueuedEvent(1.0, 0, EventKind.TICK, None, None)
        b = QueuedEvent(1.0, 1, EventKind.TICK, None, None)
        c = QueuedEvent(2.0, 0, EventKind.TICK, None, None)
        assert a < b < c

    def test_schedule_still_rejects_past_and_negative(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.TICK)
        queue.pop()
        with pytest.raises(SchedulingError):
            queue.schedule(4.0, EventKind.TICK)
        with pytest.raises(ValueError):
            queue.schedule(-1.0, EventKind.TICK)
        with pytest.raises(ValueError):
            queue.schedule(6.0, EventKind.TICK, target=-2)
