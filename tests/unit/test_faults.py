"""Unit tests for the crash schedule (failure patterns)."""

import random

import pytest

from repro.simulation.faults import CrashSchedule
from repro.simulation.simtime import NEVER


class TestConstruction:
    def test_none_schedule_all_correct(self):
        schedule = CrashSchedule.none(4)
        assert schedule.n_faulty == 0
        assert schedule.correct_indices() == (0, 1, 2, 3)

    def test_crash_at(self):
        schedule = CrashSchedule.crash_at(4, {1: 5.0, 2: 10.0})
        assert schedule.crash_time(1) == 5.0
        assert schedule.crash_time(2) == 10.0

    def test_crash_initially(self):
        schedule = CrashSchedule.crash_initially(4, [0, 3])
        assert schedule.crash_time(0) == 0.0
        assert schedule.crash_time(3) == 0.0
        assert schedule.is_correct(1)

    def test_rejects_all_crashed(self):
        with pytest.raises(ValueError):
            CrashSchedule.crash_at(2, {0: 1.0, 1: 2.0})

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            CrashSchedule.crash_at(3, {5: 1.0})

    def test_rejects_negative_crash_time(self):
        with pytest.raises(ValueError):
            CrashSchedule.crash_at(3, {0: -1.0})

    def test_never_crash_time_treated_as_correct(self):
        schedule = CrashSchedule.crash_at(3, {0: NEVER})
        assert schedule.is_correct(0)
        assert schedule.n_faulty == 0

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            CrashSchedule.none(0)

    def test_random_crashes_counts(self):
        schedule = CrashSchedule.random_crashes(6, 3, random.Random(0))
        assert schedule.n_faulty == 3
        assert schedule.n_correct == 3

    def test_random_crashes_times_within_bounds(self):
        schedule = CrashSchedule.random_crashes(
            6, 3, random.Random(0), earliest=5.0, latest=10.0
        )
        for _, time in schedule:
            assert 5.0 <= time <= 10.0

    def test_random_crashes_rejects_all(self):
        with pytest.raises(ValueError):
            CrashSchedule.random_crashes(3, 3, random.Random(0))

    def test_random_crashes_deterministic(self):
        a = CrashSchedule.random_crashes(6, 2, random.Random(7))
        b = CrashSchedule.random_crashes(6, 2, random.Random(7))
        assert dict(a.crash_times) == dict(b.crash_times)


class TestQueries:
    @pytest.fixture
    def schedule(self):
        return CrashSchedule.crash_at(5, {1: 5.0, 3: 10.0})

    def test_is_correct(self, schedule):
        assert schedule.is_correct(0)
        assert not schedule.is_correct(1)

    def test_is_faulty(self, schedule):
        assert schedule.is_faulty(3)
        assert not schedule.is_faulty(4)

    def test_crash_time_of_correct_is_never(self, schedule):
        assert schedule.crash_time(0) == NEVER

    def test_is_crashed_at_before_and_after(self, schedule):
        assert not schedule.is_crashed_at(1, 4.9)
        assert schedule.is_crashed_at(1, 5.0)
        assert schedule.is_crashed_at(1, 100.0)

    def test_correct_and_faulty_partition(self, schedule):
        assert set(schedule.correct_indices()) | set(schedule.faulty_indices()) == set(range(5))
        assert not set(schedule.correct_indices()) & set(schedule.faulty_indices())

    def test_alive_indices_at(self, schedule):
        assert schedule.alive_indices_at(0.0) == (0, 1, 2, 3, 4)
        assert schedule.alive_indices_at(7.0) == (0, 2, 3, 4)
        assert schedule.alive_indices_at(20.0) == (0, 2, 4)

    def test_crashed_indices_at(self, schedule):
        assert schedule.crashed_indices_at(7.0) == (1,)

    def test_counts(self, schedule):
        assert schedule.n_faulty == 2
        assert schedule.n_correct == 3

    def test_has_correct_majority(self, schedule):
        assert schedule.has_correct_majority()

    def test_no_majority(self):
        schedule = CrashSchedule.crash_at(4, {0: 1.0, 1: 1.0})
        assert not schedule.has_correct_majority()

    def test_iteration_sorted(self, schedule):
        assert list(schedule) == [(1, 5.0), (3, 10.0)]

    def test_index_out_of_range_raises(self, schedule):
        with pytest.raises(IndexError):
            schedule.crash_time(9)

    def test_describe_no_crashes(self):
        assert CrashSchedule.none(3).describe() == "no crashes"

    def test_describe_with_crashes(self, schedule):
        text = schedule.describe()
        assert "p1@5" in text
        assert "p3@10" in text
