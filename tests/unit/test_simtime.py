"""Unit tests for repro.simulation.simtime."""

import math

import pytest

from repro.simulation.simtime import (
    NEVER,
    TIME_ZERO,
    TimeWindow,
    earliest,
    is_never,
    latest,
    validate_duration,
    validate_time,
)


class TestValidateTime:
    def test_accepts_zero(self):
        assert validate_time(0.0) == 0.0

    def test_accepts_positive_int(self):
        assert validate_time(3) == 3.0

    def test_returns_float(self):
        assert isinstance(validate_time(2), float)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_time(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_time(float("nan"))

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            validate_time(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            validate_time("3.0")

    def test_error_message_uses_name(self):
        with pytest.raises(ValueError, match="deadline"):
            validate_time(-1, name="deadline")

    def test_accepts_infinity(self):
        assert validate_time(math.inf) == math.inf


class TestValidateDuration:
    def test_accepts_positive(self):
        assert validate_duration(1.5) == 1.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError):
            validate_duration(0.0)

    def test_accepts_zero_when_allowed(self):
        assert validate_duration(0.0, allow_zero=True) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_duration(-1.0, allow_zero=True)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            validate_duration(float("nan"))

    def test_rejects_non_number(self):
        with pytest.raises(TypeError):
            validate_duration(None)


class TestNeverSentinel:
    def test_never_is_infinite(self):
        assert math.isinf(NEVER)

    def test_is_never_true_for_sentinel(self):
        assert is_never(NEVER)

    def test_is_never_false_for_finite(self):
        assert not is_never(1e12)

    def test_is_never_false_for_negative_infinity(self):
        assert not is_never(-math.inf)

    def test_time_zero(self):
        assert TIME_ZERO == 0.0


class TestTimeWindow:
    def test_duration(self):
        assert TimeWindow(1.0, 4.0).duration == 3.0

    def test_contains_start_inclusive(self):
        assert TimeWindow(1.0, 4.0).contains(1.0)

    def test_contains_end_exclusive(self):
        assert not TimeWindow(1.0, 4.0).contains(4.0)

    def test_contains_interior(self):
        assert TimeWindow(1.0, 4.0).contains(2.5)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(ValueError):
            TimeWindow(4.0, 1.0)

    def test_clamp_below(self):
        assert TimeWindow(1.0, 4.0).clamp(0.0) == 1.0

    def test_clamp_above(self):
        assert TimeWindow(1.0, 4.0).clamp(9.0) == 4.0

    def test_clamp_inside(self):
        assert TimeWindow(1.0, 4.0).clamp(2.0) == 2.0

    def test_subdivide_counts(self):
        parts = TimeWindow(0.0, 10.0).subdivide(4)
        assert len(parts) == 4
        assert parts[0].start == 0.0
        assert parts[-1].end == pytest.approx(10.0)

    def test_subdivide_contiguous(self):
        parts = TimeWindow(0.0, 9.0).subdivide(3)
        for left, right in zip(parts, parts[1:]):
            assert left.end == pytest.approx(right.start)

    def test_subdivide_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            TimeWindow(0.0, 1.0).subdivide(0)

    def test_subdivide_rejects_open_ended(self):
        with pytest.raises(ValueError):
            TimeWindow(0.0, NEVER).subdivide(2)

    def test_open_ended_window_allowed(self):
        window = TimeWindow(0.0, NEVER)
        assert window.contains(1e18)


class TestEarliestLatest:
    def test_earliest_of_values(self):
        assert earliest([3.0, 1.0, 2.0]) == 1.0

    def test_earliest_empty_is_never(self):
        assert is_never(earliest([]))

    def test_latest_of_values(self):
        assert latest([3.0, 1.0, 2.0]) == 3.0

    def test_latest_empty_is_zero(self):
        assert latest([]) == 0.0
