"""The live introspection server: routes, content types, lifecycle."""

from __future__ import annotations

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def server():
    with obs.ObsServer(port=0) as handle:
        yield handle


def _get(server, route):
    return urlopen(f"http://127.0.0.1:{server.port}{route}", timeout=5.0)


class TestObsServer:
    def test_metrics_route_serves_prometheus_text(self, server):
        obs.enable()
        obs.counter("served_total", "Requests served.").inc(3)
        with _get(server, "/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        assert "# TYPE served_total counter" in body
        assert "served_total 3" in body

    def test_healthz_reports_uptime(self, server):
        with _get(server, "/healthz") as response:
            body = json.loads(response.read().decode("utf-8"))
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_snapshot_route_serves_json(self, server):
        obs.enable()
        obs.gauge("workers", "w").set(4)
        with _get(server, "/snapshot") as response:
            assert response.headers["Content-Type"] == "application/json"
            body = json.loads(response.read().decode("utf-8"))
        assert body["snapshot_version"] == 1
        assert body["metrics"]["workers"]["samples"][0]["value"] == 4

    def test_unknown_route_404s(self, server):
        with pytest.raises(HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_scrape_reflects_live_updates(self, server):
        obs.enable()
        counter = obs.counter("live_total", "l")
        counter.inc()
        with _get(server, "/metrics") as response:
            first = response.read().decode("utf-8")
        counter.inc(9)
        with _get(server, "/metrics") as response:
            second = response.read().decode("utf-8")
        assert "live_total 1" in first
        assert "live_total 10" in second

    def test_concurrent_scrapes_under_registry_mutation(self, server):
        import threading

        obs.enable()
        counter = obs.counter("churn_total", "c", ("kind",))
        histogram = obs.histogram("churn_seconds", "c")
        stop = threading.Event()
        errors = []

        def mutate():
            i = 0
            while not stop.is_set():
                counter.inc(kind=f"k{i % 7}")
                histogram.observe(i * 0.01)
                i += 1

        def scrape():
            try:
                for _ in range(20):
                    with _get(server, "/metrics") as response:
                        body = response.read().decode("utf-8")
                    assert "# TYPE churn_total counter" in body
                    with _get(server, "/snapshot") as response:
                        json.loads(response.read().decode("utf-8"))
            except Exception as exc:  # propagate into the main thread
                errors.append(exc)

        mutator = threading.Thread(target=mutate)
        scrapers = [threading.Thread(target=scrape) for _ in range(4)]
        mutator.start()
        for thread in scrapers:
            thread.start()
        for thread in scrapers:
            thread.join()
        stop.set()
        mutator.join()
        assert errors == []

    def test_shutdown_is_idempotent_and_releases_port(self):
        server = obs.start_server(port=0)
        port = server.port
        server.shutdown()
        server.shutdown()
        # The port is free again: a new server can bind it.
        replacement = obs.ObsServer(port=port).start()
        try:
            assert replacement.port == port
        finally:
            replacement.shutdown()
