"""Unit tests for the vectorized (batched) loss and delay models."""

import random

import pytest

from repro.network.delay import (
    BatchedExponentialDelay,
    BatchedUniformDelay,
    DelaySpec,
)
from repro.network.loss import BatchedBernoulliLoss, LossSpec


class TestBatchedBernoulliLoss:
    def test_block_size_invariance(self):
        """The same seed gives the same decision stream for any block size."""
        a = BatchedBernoulliLoss(0.4, random.Random(7), block=1)
        b = BatchedBernoulliLoss(0.4, random.Random(7), block=997)
        decisions_a = [a.should_drop(0, 1, None) for _ in range(5000)]
        decisions_b = [b.should_drop(0, 1, None) for _ in range(5000)]
        assert decisions_a == decisions_b

    def test_empirical_rate(self):
        model = BatchedBernoulliLoss(0.3, random.Random(1), block=512)
        drops = sum(model.should_drop(0, 1, None) for _ in range(20000))
        assert 0.27 < drops / 20000 < 0.33

    def test_degenerate_probabilities(self):
        never = BatchedBernoulliLoss(0.0, random.Random(1))
        always = BatchedBernoulliLoss(1.0, random.Random(1))
        assert not any(never.should_drop(0, 1, None) for _ in range(100))
        assert all(always.should_drop(0, 1, None) for _ in range(100))

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            BatchedBernoulliLoss(1.5, random.Random(1))
        with pytest.raises(ValueError):
            BatchedBernoulliLoss(0.5, random.Random(1), block=0)

    def test_spec_builds_batched_variant(self):
        spec = LossSpec.bernoulli(0.2, batch=64)
        model = spec.build(0, 1, random.Random(3))
        assert isinstance(model, BatchedBernoulliLoss)
        assert model.block == 64
        assert "batched" in spec.describe()

    def test_spec_without_batch_stays_scalar(self):
        spec = LossSpec.bernoulli(0.2)
        model = spec.build(0, 1, random.Random(3))
        assert not isinstance(model, BatchedBernoulliLoss)
        assert "batched" not in spec.describe()


class TestBatchedDelays:
    def test_uniform_block_size_invariance(self):
        a = BatchedUniformDelay(random.Random(5), 0.1, 2.0, block=1)
        b = BatchedUniformDelay(random.Random(5), 0.1, 2.0, block=313)
        assert [a.sample() for _ in range(2000)] == [b.sample() for _ in range(2000)]

    def test_uniform_bounds(self):
        model = BatchedUniformDelay(random.Random(5), 0.1, 2.0, block=128)
        for _ in range(1000):
            assert 0.1 <= model.sample() <= 2.0

    def test_exponential_block_size_invariance(self):
        a = BatchedExponentialDelay(random.Random(5), mean=0.5, cap=3.0, block=1)
        b = BatchedExponentialDelay(random.Random(5), mean=0.5, cap=3.0, block=450)
        assert [a.sample() for _ in range(2000)] == [b.sample() for _ in range(2000)]

    def test_exponential_clamping(self):
        model = BatchedExponentialDelay(
            random.Random(5), mean=0.5, cap=1.0, minimum=0.2, block=64
        )
        for _ in range(1000):
            assert 0.2 <= model.sample() <= 1.0

    def test_exponential_mean_roughly_right(self):
        model = BatchedExponentialDelay(random.Random(11), mean=0.5, block=1024)
        samples = [model.sample() for _ in range(20000)]
        assert 0.45 < sum(samples) / len(samples) < 0.55

    def test_specs_build_batched_variants(self):
        uniform = DelaySpec.uniform(0.1, 1.0, batch=32).build(0, 1, random.Random(1))
        expo = DelaySpec.exponential(0.4, cap=2.0, batch=32).build(
            0, 1, random.Random(1)
        )
        assert isinstance(uniform, BatchedUniformDelay)
        assert isinstance(expo, BatchedExponentialDelay)
        assert uniform.block == expo.block == 32

    def test_describe_mentions_batched(self):
        assert "batched" in BatchedUniformDelay(random.Random(1)).describe()
        assert "batched" in BatchedExponentialDelay(random.Random(1)).describe()
