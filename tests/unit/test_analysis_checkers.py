"""Unit tests for the URB property checkers, quiescence analysis and
anonymity audits, exercised on hand-built runs."""

import pytest

from repro.analysis.anonymity import audit_ack_tag_uniqueness, audit_anonymity
from repro.analysis.properties import (
    check_correct_agreement,
    check_uniform_agreement,
    check_uniform_integrity,
    check_urb_properties,
    check_validity,
)
from repro.analysis.quiescence import analyze_quiescence, cumulative_send_curve
from repro.core.delivery import DeliveryLog
from repro.core.messages import AckPayload, TaggedMessage
from repro.experiments.config import Scenario
from repro.experiments.runner import run_scenario
from repro.network.loss import LossSpec
from repro.simulation.engine import SimulationResult
from repro.simulation.config import SimulationConfig
from repro.simulation.events import EventStats
from repro.simulation.faults import CrashSchedule
from repro.simulation.metrics import MetricsCollector
from repro.simulation.tracing import TraceCategory, TraceRecorder
from repro.workloads.generators import SingleBroadcast


def build_result(n=3, crashes=None, broadcasts=(), deliveries=(), sends=(),
                 final_time=50.0):
    """Hand-build a SimulationResult from event descriptions.

    broadcasts: iterable of (time, process, content)
    deliveries: iterable of (time, process, content, tag)
    sends:      iterable of (time, src, dst, kind, payload)
    """
    trace = TraceRecorder()
    metrics = MetricsCollector()
    logs = {i: DeliveryLog() for i in range(n)}
    for time, process, content in broadcasts:
        trace.record(time, TraceCategory.URB_BROADCAST, process, content=content)
        metrics.on_urb_broadcast(time, process, content)
    for time, src, dst, kind, payload in sends:
        trace.record(time, TraceCategory.SEND, src, dst=dst, kind=kind,
                     payload=payload)
        metrics.on_send(time, src, kind)
    for time, process, content, tag in deliveries:
        trace.record(time, TraceCategory.URB_DELIVER, process, content=content,
                     tag=tag)
        metrics.on_urb_deliver(time, process, content)
        message = TaggedMessage(content, tag)
        if message not in logs[process]:
            logs[process].append(message)
    metrics.on_finish(final_time)
    schedule = CrashSchedule.crash_at(n, crashes or {})
    return SimulationResult(
        config=SimulationConfig(n_processes=n, max_time=final_time),
        crash_schedule=schedule,
        trace=trace,
        metrics=metrics,
        delivery_logs=logs,
        processes={},
        expected_contents=tuple(content for _, _, content in broadcasts),
        final_time=final_time,
        stop_reason="horizon",
        event_stats=EventStats(),
    )


class TestValidity:
    def test_holds_when_correct_sender_delivers(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 0, "m", 7), (1.0, 1, "m", 7), (1.0, 2, "m", 7)],
        )
        assert check_validity(result).holds

    def test_violated_when_correct_sender_never_delivers(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 1, "m", 7), (1.0, 2, "m", 7)],
        )
        verdict = check_validity(result)
        assert not verdict.holds
        assert "p0" in verdict.violations[0]

    def test_faulty_sender_exempt(self):
        result = build_result(
            crashes={0: 5.0},
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 1, "m", 7), (1.0, 2, "m", 7)],
        )
        assert check_validity(result).holds

    def test_vacuous_with_no_broadcasts(self):
        assert check_validity(build_result()).holds


class TestUniformAgreement:
    def test_holds_when_all_correct_deliver(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 0, "m", 7), (1.5, 1, "m", 7), (2.0, 2, "m", 7)],
        )
        assert check_uniform_agreement(result).holds

    def test_violated_when_a_correct_process_misses_it(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 0, "m", 7)],
        )
        verdict = check_uniform_agreement(result)
        assert not verdict.holds
        assert len(verdict.violations) == 2  # p1 and p2 both missed it

    def test_delivery_by_faulty_process_obligates_correct_ones(self):
        # The "uniform" part: even a delivery by a process that later crashes
        # forces every correct process to deliver.
        result = build_result(
            crashes={2: 3.0},
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 2, "m", 7)],
        )
        assert not check_uniform_agreement(result).holds

    def test_faulty_processes_not_required_to_deliver(self):
        result = build_result(
            crashes={2: 3.0},
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 0, "m", 7), (1.0, 1, "m", 7)],
        )
        assert check_uniform_agreement(result).holds

    def test_correct_only_agreement_weaker(self):
        # Delivered only by a faulty process: plain agreement-among-correct
        # holds (vacuously), uniform agreement does not.
        result = build_result(
            crashes={2: 3.0},
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 2, "m", 7)],
        )
        assert check_correct_agreement(result).holds
        assert not check_uniform_agreement(result).holds


class TestUniformIntegrity:
    def test_holds_for_single_deliveries_of_broadcast_content(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 0, "m", 7), (1.0, 1, "m", 7), (1.0, 2, "m", 7)],
        )
        assert check_uniform_integrity(result).holds

    def test_violated_by_duplicate_delivery(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 1, "m", 7), (2.0, 1, "m", 7),
                        (1.0, 0, "m", 7), (1.0, 2, "m", 7)],
        )
        # Note: the hand-built delivery log would reject duplicates, so feed
        # the duplicate only through the trace.
        verdict = check_uniform_integrity(result)
        assert not verdict.holds

    def test_violated_by_delivery_of_unbroadcast_content(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 1, "ghost", 9), (1.0, 0, "m", 7),
                        (1.0, 1, "m", 7), (1.0, 2, "m", 7)],
        )
        assert not check_uniform_integrity(result).holds

    def test_violated_by_delivery_before_broadcast(self):
        result = build_result(
            broadcasts=[(5.0, 0, "m")],
            deliveries=[(1.0, 1, "m", 7), (6.0, 0, "m", 7), (6.0, 2, "m", 7)],
        )
        assert not check_uniform_integrity(result).holds


def _duplicate_tolerant_build(**kwargs):
    return build_result(**kwargs)


class TestCombinedVerdict:
    def test_all_hold(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 0, "m", 7), (1.0, 1, "m", 7), (1.0, 2, "m", 7)],
        )
        verdict = check_urb_properties(result)
        assert verdict.all_hold
        assert verdict.violations() == []
        assert "OK" in verdict.describe()

    def test_reports_all_violations(self):
        result = build_result(
            broadcasts=[(0.0, 0, "m")],
            deliveries=[(1.0, 1, "ghost", 9)],
        )
        verdict = check_urb_properties(result)
        assert not verdict.all_hold
        assert len(verdict.violations()) >= 2


class TestQuiescenceAnalysis:
    def test_quiescent_run(self):
        result = build_result(
            sends=[(1.0, 0, 1, "MSG", None), (2.0, 0, 1, "MSG", None)],
            final_time=50.0,
        )
        report = analyze_quiescence(result, required_idle_tail=5.0)
        assert report.quiescent
        assert report.last_send_time == 2.0
        assert report.idle_tail == pytest.approx(48.0)

    def test_non_quiescent_run(self):
        result = build_result(
            sends=[(float(t), 0, 1, "MSG", None) for t in range(50)],
            final_time=50.0,
        )
        report = analyze_quiescence(result, required_idle_tail=5.0)
        assert not report.quiescent

    def test_no_sends_at_all(self):
        report = analyze_quiescence(build_result(final_time=10.0))
        assert report.quiescent
        assert report.last_send_time is None
        assert report.total_sends == 0

    def test_default_idle_tail_uses_tick_interval(self):
        result = build_result(final_time=10.0)
        report = analyze_quiescence(result)
        assert report.required_idle_tail == pytest.approx(
            2.0 * result.config.tick_interval
        )

    def test_histogram_present(self):
        result = build_result(
            sends=[(0.5, 0, 1, "MSG", None), (7.0, 0, 1, "MSG", None)],
            final_time=10.0,
        )
        report = analyze_quiescence(result, window=5.0)
        assert dict(report.sends_per_window) == {0.0: 1, 5.0: 1}

    def test_cumulative_send_curve_monotone(self):
        result = build_result(
            sends=[(float(t), 0, 1, "MSG", None) for t in range(10)],
            final_time=20.0,
        )
        curve = cumulative_send_curve(result, n_points=5)
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert values[-1] == 10

    def test_cumulative_curve_rejects_single_point(self):
        with pytest.raises(ValueError):
            cumulative_send_curve(build_result(), n_points=1)

    def test_describe_mentions_status(self):
        report = analyze_quiescence(build_result(final_time=10.0))
        assert "quiescent" in report.describe()


class TestAnonymityAudit:
    def test_clean_run_passes(self):
        message = TaggedMessage("m", 1)
        result = build_result(
            sends=[
                (1.0, 0, 1, "ACK", AckPayload(message, 100)),
                (1.0, 1, 0, "ACK", AckPayload(message, 200)),
            ]
        )
        audit = audit_anonymity(result)
        assert audit.passed

    def test_shared_ack_tag_across_processes_fails(self):
        message = TaggedMessage("m", 1)
        result = build_result(
            sends=[
                (1.0, 0, 1, "ACK", AckPayload(message, 100)),
                (1.0, 1, 0, "ACK", AckPayload(message, 100)),
            ]
        )
        ok, violations = audit_ack_tag_uniqueness(result)
        assert not ok
        assert violations

    def test_process_changing_its_ack_tag_fails(self):
        message = TaggedMessage("m", 1)
        result = build_result(
            sends=[
                (1.0, 0, 1, "ACK", AckPayload(message, 100)),
                (2.0, 0, 1, "ACK", AckPayload(message, 101)),
            ]
        )
        ok, violations = audit_ack_tag_uniqueness(result)
        assert not ok

    def test_non_standard_payload_fails_opacity(self):
        result = build_result(sends=[(1.0, 0, 1, "weird", object())])
        audit = audit_anonymity(result)
        assert not audit.payloads_opaque
        assert not audit.passed

    def test_identified_baseline_exempt(self):
        result = build_result(sends=[(1.0, 0, 1, "weird", object())])
        audit = audit_anonymity(result, allow_identified=True)
        assert audit.payloads_opaque


class TestOnRealRun:
    def test_checkers_agree_with_runner(self):
        scenario = Scenario(
            algorithm="algorithm1", n_processes=4, loss=LossSpec.bernoulli(0.1),
            max_time=60.0, stop_when_all_correct_delivered=True,
            workload=SingleBroadcast(), seed=3,
        )
        result = run_scenario(scenario)
        assert check_urb_properties(result.simulation).all_hold
        assert result.all_properties_hold
