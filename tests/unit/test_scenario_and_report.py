"""Unit tests for Scenario configuration, experiment reports and sweeps."""

import pytest

from repro.experiments.common import (
    crash_last,
    multi_sender_workload,
    seeds_for,
)
from repro.experiments.config import ALGORITHMS, Scenario
from repro.experiments.report import ExperimentArtifact, ExperimentResult
from repro.experiments.sweeps import SweepPoint, sweep
from repro.failure_detectors.policies import DisseminationPolicy
from repro.network.loss import LossSpec
from repro.workloads.generators import SingleBroadcast


class TestScenario:
    def test_defaults_are_valid(self):
        scenario = Scenario()
        assert scenario.algorithm in ALGORITHMS
        assert scenario.n_processes >= 1

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            Scenario(algorithm="paxos")

    def test_unknown_channel_type_rejected(self):
        with pytest.raises(ValueError):
            Scenario(channel_type="carrier_pigeon")

    def test_bad_process_count_rejected(self):
        with pytest.raises(ValueError):
            Scenario(n_processes=0)

    def test_crash_index_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Scenario(n_processes=3, crashes={5: 1.0})

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError):
            Scenario(n_processes=3, crashes={0: -1.0})

    def test_all_crashed_rejected(self):
        with pytest.raises(ValueError):
            Scenario(n_processes=2, crashes={0: 1.0, 1: 1.0})

    def test_policy_normalised_from_string(self):
        scenario = Scenario(fd_policy="all_processes")
        assert scenario.fd_policy is DisseminationPolicy.ALL_PROCESSES

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            Scenario(fd_policy="psychic")

    def test_n_crashes_and_majority(self):
        scenario = Scenario(n_processes=5, crashes={3: 1.0, 4: 1.0})
        assert scenario.n_crashes == 2
        assert scenario.has_correct_majority
        minority = Scenario(n_processes=4, crashes={1: 1.0, 2: 1.0, 3: 1.0})
        assert not minority.has_correct_majority

    def test_effective_apstar_delay_defaults_to_atheta(self):
        assert Scenario(fd_detection_delay=7.0).effective_apstar_delay == 7.0
        assert Scenario(fd_detection_delay=7.0,
                        apstar_detection_delay=2.0).effective_apstar_delay == 2.0

    def test_with_seed_and_with(self):
        scenario = Scenario(seed=1)
        assert scenario.with_seed(9).seed == 9
        assert scenario.with_(n_processes=8).n_processes == 8
        assert scenario.seed == 1  # original untouched

    def test_describe(self):
        text = Scenario(name="x", algorithm="algorithm1", n_processes=7).describe()
        assert "x" in text and "algorithm1" in text and "n=7" in text

    def test_invalid_tick_interval(self):
        with pytest.raises(ValueError):
            Scenario(tick_interval=0.0)

    def test_invalid_max_time(self):
        with pytest.raises(ValueError):
            Scenario(max_time=0.0)


class TestCommonHelpers:
    def test_crash_last_keeps_low_indices(self):
        crashes = crash_last(6, 2, time=3.0)
        assert set(crashes) == {4, 5}
        assert all(t == 3.0 for t in crashes.values())

    def test_crash_last_zero(self):
        assert crash_last(5, 0) == {}

    def test_crash_last_rejects_all(self):
        with pytest.raises(ValueError):
            crash_last(3, 3)
        with pytest.raises(ValueError):
            crash_last(3, -1)

    def test_seeds_for(self):
        assert seeds_for(quick=False, seeds=None) >= 1
        assert seeds_for(quick=True, seeds=None) == 1
        assert seeds_for(quick=True, seeds=7) == 7
        with pytest.raises(ValueError):
            seeds_for(quick=False, seeds=0)

    def test_multi_sender_workload(self):
        workload = multi_sender_workload(n_messages=3, senders=(0, 1))
        assert len(workload) == 3
        assert workload.senders() == {0, 1}


class TestExperimentReport:
    def test_artifact_render_and_column(self):
        artifact = ExperimentArtifact(
            name="Table X", kind="table", headers=["a", "b"],
            rows=[[1, 2], [3, 4]], notes="note",
        )
        text = artifact.render()
        assert "Table X" in text and "note" in text
        assert artifact.column("b") == [2, 4]

    def test_artifact_unknown_column(self):
        artifact = ExperimentArtifact("t", "table", ["a"], [[1]])
        with pytest.raises(KeyError):
            artifact.column("z")

    def test_artifact_bad_kind(self):
        with pytest.raises(ValueError):
            ExperimentArtifact("t", "plot", ["a"], [[1]])

    def test_result_render_and_lookup(self):
        artifact = ExperimentArtifact("Table X", "table", ["a"], [[1]])
        result = ExperimentResult(
            experiment_id="E99", title="Demo", artifacts=[artifact],
            parameters={"seeds": 3}, notes="hello",
        )
        text = result.render()
        assert "E99 — Demo" in text
        assert "seeds=3" in text
        assert "hello" in text
        assert result.artifact("Table X") is artifact
        with pytest.raises(KeyError):
            result.artifact("missing")

    def test_summary_row(self):
        result = ExperimentResult("E1", "t", [])
        assert result.summary_row() == ["E1", "t", 0]


class TestSweeps:
    @pytest.fixture
    def base(self):
        return Scenario(
            algorithm="algorithm1", n_processes=3, max_time=40.0,
            stop_when_all_correct_delivered=True,
            workload=SingleBroadcast(), loss=LossSpec.none(),
        )

    def test_sweep_replaces_field(self, base):
        points = sweep(base, "n_processes", [3, 4], seeds=1)
        assert [p.value for p in points] == [3, 4]
        assert points[1].scenario.n_processes == 4
        assert all(len(p.results) == 1 for p in points)

    def test_sweep_with_builder(self, base):
        points = sweep(
            base, "loss", [0.0, 0.5], seeds=1,
            scenario_builder=lambda s, p: s.with_(loss=LossSpec.bernoulli(p)),
        )
        assert points[1].scenario.loss.params["probability"] == 0.5

    def test_point_metrics(self, base):
        points = sweep(base, "n_processes", [3], seeds=2)
        point = points[0]
        latencies = point.metric(lambda r: r.metrics.mean_latency)
        assert len(latencies) == 2
        assert point.mean_metric(lambda r: r.metrics.mean_latency) == pytest.approx(
            sum(latencies) / 2
        )
        assert point.fraction(lambda r: True) == 1.0
        assert point.fraction(lambda r: False) == 0.0

    def test_point_metric_drops_none(self, base):
        point = SweepPoint(value=0, scenario=base, results=[])
        assert point.metric(lambda r: None) == []
        assert point.mean_metric(lambda r: None) is None
        assert point.metric_ci(lambda r: None) is None
        assert point.fraction(lambda r: True) == 0.0

    def test_metric_ci(self, base):
        points = sweep(base, "n_processes", [3], seeds=3)
        ci = points[0].metric_ci(lambda r: r.metrics.mean_latency)
        assert ci is not None
        mean, low, high = ci
        assert low <= mean <= high
