"""Unit tests for the baseline broadcast protocols."""

import pytest

from helpers import FakeEnvironment
from repro.core.baselines import (
    BestEffortBroadcastProcess,
    EagerReliableBroadcastProcess,
    IdentifiedMajorityUrbProcess,
)
from repro.core.messages import AckPayload, MsgPayload, TaggedMessage


class TestBestEffort:
    def test_broadcast_sends_once_and_never_retransmits(self):
        env = FakeEnvironment()
        process = BestEffortBroadcastProcess(env)
        process.urb_broadcast("m")
        assert len(env.broadcasts_of_kind("MSG")) == 1
        process.on_tick()
        process.on_tick()
        assert len(env.broadcasts_of_kind("MSG")) == 1
        assert process.pending_retransmissions == 0

    def test_delivers_on_first_reception_only(self):
        env = FakeEnvironment()
        process = BestEffortBroadcastProcess(env)
        message = TaggedMessage("m", 1)
        process.on_receive(MsgPayload(message))
        process.on_receive(MsgPayload(message))
        assert len(env.deliveries) == 1

    def test_ignores_acks(self):
        env = FakeEnvironment()
        process = BestEffortBroadcastProcess(env)
        process.on_receive(AckPayload(TaggedMessage("m", 1), 5))
        assert env.deliveries == []
        assert env.broadcasts == []

    def test_sender_does_not_deliver_locally_without_loopback(self):
        # Delivery only happens on reception (the loopback copy provides it
        # in a full run); the unit-level process does not self-deliver.
        env = FakeEnvironment()
        process = BestEffortBroadcastProcess(env)
        process.urb_broadcast("m")
        assert env.deliveries == []

    def test_describe(self):
        assert "best-effort" in BestEffortBroadcastProcess(FakeEnvironment()).describe()


class TestEagerReliableBroadcast:
    def test_delivers_then_relays_once(self):
        env = FakeEnvironment()
        process = EagerReliableBroadcastProcess(env)
        message = TaggedMessage("m", 1)
        process.on_receive(MsgPayload(message))
        assert len(env.deliveries) == 1
        assert len(env.broadcasts_of_kind("MSG")) == 1
        # Second reception: neither a second delivery nor a second relay.
        process.on_receive(MsgPayload(message))
        assert len(env.deliveries) == 1
        assert len(env.broadcasts_of_kind("MSG")) == 1

    def test_own_broadcast_not_relayed_again(self):
        env = FakeEnvironment()
        process = EagerReliableBroadcastProcess(env)
        process.urb_broadcast("m")
        own = env.broadcasts_of_kind("MSG")[0]
        process.on_receive(own)
        # Delivered its own message but did not re-relay it.
        assert len(env.deliveries) == 1
        assert len(env.broadcasts_of_kind("MSG")) == 1

    def test_no_retransmission_task(self):
        env = FakeEnvironment()
        process = EagerReliableBroadcastProcess(env)
        process.urb_broadcast("m")
        process.on_tick()
        assert len(env.broadcasts_of_kind("MSG")) == 1
        assert process.pending_retransmissions == 0

    def test_ignores_acks(self):
        env = FakeEnvironment()
        process = EagerReliableBroadcastProcess(env)
        process.on_receive(AckPayload(TaggedMessage("m", 1), 5))
        assert env.deliveries == []


class TestIdentifiedMajorityUrb:
    def test_ack_carries_identity(self):
        env = FakeEnvironment()
        process = IdentifiedMajorityUrbProcess(env, n_processes=5, identity=3)
        process.on_receive(MsgPayload(TaggedMessage("m", 1)))
        ack = env.broadcasts_of_kind("ACK")[0]
        assert ack.ack_tag == 3

    def test_delivery_on_majority_of_identities(self):
        env = FakeEnvironment()
        process = IdentifiedMajorityUrbProcess(env, n_processes=5, identity=0)
        message = TaggedMessage("m", 1)
        process.on_receive(AckPayload(message, 1))
        process.on_receive(AckPayload(message, 2))
        assert env.deliveries == []
        process.on_receive(AckPayload(message, 3))
        assert len(env.deliveries) == 1

    def test_duplicate_identities_do_not_count_twice(self):
        env = FakeEnvironment()
        process = IdentifiedMajorityUrbProcess(env, n_processes=5, identity=0)
        message = TaggedMessage("m", 1)
        for _ in range(10):
            process.on_receive(AckPayload(message, 1))
        assert env.deliveries == []

    def test_retransmits_like_algorithm1(self):
        env = FakeEnvironment()
        process = IdentifiedMajorityUrbProcess(
            env, n_processes=3, identity=0, eager_first_broadcast=False
        )
        process.urb_broadcast("m")
        process.on_tick()
        process.on_tick()
        assert len(env.broadcasts_of_kind("MSG")) == 2
        assert process.pending_retransmissions == 1

    def test_rejects_bad_identity(self):
        with pytest.raises(ValueError):
            IdentifiedMajorityUrbProcess(FakeEnvironment(), n_processes=3, identity=5)
        with pytest.raises(ValueError):
            IdentifiedMajorityUrbProcess(FakeEnvironment(), n_processes=0, identity=0)

    def test_describe_mentions_identity(self):
        process = IdentifiedMajorityUrbProcess(FakeEnvironment(), n_processes=3,
                                               identity=2)
        assert "id=2" in process.describe()
