"""Unit tests for channels (fair lossy, reliable, quasi-reliable) and the
anonymous network."""

import random

import pytest

from repro.network.channel import LossyChannel
from repro.network.delay import DelaySpec, FixedDelay
from repro.network.fair_lossy import (
    DEFAULT_FAIRNESS_BOUND,
    FairLossyChannel,
    FairLossyChannelFactory,
)
from repro.network.loss import BernoulliLoss, DropFirstK, LossSpec, NoLoss
from repro.network.network import Network
from repro.network.reliable import (
    QuasiReliableChannel,
    QuasiReliableChannelFactory,
    ReliableChannel,
    ReliableChannelFactory,
)
from repro.simulation.rng import RandomSource
from repro.simulation.simtime import NEVER


class TestLossyChannel:
    def test_delivery_time_includes_delay(self):
        channel = LossyChannel(0, 1, NoLoss(), FixedDelay(0.5))
        assert channel.transmit("m", 10.0) == 10.5

    def test_drop_returns_none(self):
        channel = LossyChannel(0, 1, DropFirstK(1), FixedDelay(0.5))
        assert channel.transmit("m", 0.0) is None
        assert channel.transmit("m", 1.0) == 1.5

    def test_stats_track_attempts_and_drops(self):
        channel = LossyChannel(0, 1, DropFirstK(2), FixedDelay(0.5))
        for t in range(4):
            channel.transmit("m", float(t))
        assert channel.stats.attempts == 4
        assert channel.stats.dropped == 2
        assert channel.stats.delivered == 2
        assert channel.stats.drop_rate == pytest.approx(0.5)

    def test_fairness_guard_forces_delivery(self):
        # The loss model wants to drop everything; the guard caps consecutive
        # drops at 3, so the 4th copy must get through.
        channel = LossyChannel(0, 1, BernoulliLoss(1.0, random.Random(0)),
                               FixedDelay(0.1), fairness_bound=3)
        outcomes = [channel.transmit("m", float(t)) for t in range(5)]
        assert outcomes[:3] == [None, None, None]
        assert outcomes[3] is not None
        assert channel.stats.forced_deliveries == 1

    def test_fairness_guard_resets_after_delivery(self):
        channel = LossyChannel(0, 1, BernoulliLoss(1.0, random.Random(0)),
                               FixedDelay(0.1), fairness_bound=2)
        results = [channel.transmit("m", float(t)) for t in range(7)]
        delivered = [r is not None for r in results]
        # pattern: drop, drop, forced, drop, drop, forced, ...
        assert delivered == [False, False, True, False, False, True, False]

    def test_fairness_guard_is_per_key(self):
        channel = LossyChannel(0, 1, BernoulliLoss(1.0, random.Random(0)),
                               FixedDelay(0.1), fairness_bound=1)
        assert channel.transmit("a", 0.0) is None
        assert channel.transmit("b", 0.0) is None
        assert channel.consecutive_drops("a") == 1
        assert channel.consecutive_drops("b") == 1

    def test_rejects_invalid_fairness_bound(self):
        with pytest.raises(ValueError):
            LossyChannel(0, 1, NoLoss(), FixedDelay(0.1), fairness_bound=0)

    def test_rejects_negative_endpoints(self):
        with pytest.raises(ValueError):
            LossyChannel(-1, 0, NoLoss(), FixedDelay(0.1))

    def test_describe(self):
        channel = LossyChannel(0, 1, NoLoss(), FixedDelay(0.1), fairness_bound=5)
        assert "0->1" in channel.describe()


class TestFairLossyFactory:
    def test_default_fairness_bound(self):
        factory = FairLossyChannelFactory(loss_spec=LossSpec.bernoulli(0.5))
        channel = factory.build(0, 1, random.Random(0), random.Random(1))
        assert isinstance(channel, FairLossyChannel)
        assert channel.fairness_bound == DEFAULT_FAIRNESS_BOUND

    def test_guard_can_be_disabled(self):
        factory = FairLossyChannelFactory(fairness_bound=None)
        channel = factory.build(0, 1, random.Random(0), random.Random(1))
        assert channel.fairness_bound is None

    def test_describe(self):
        assert "fair-lossy" in FairLossyChannelFactory().describe()


class TestReliableChannels:
    def test_reliable_always_delivers(self):
        channel = ReliableChannel(0, 1, FixedDelay(1.0))
        assert all(channel.transmit("m", float(t)) is not None for t in range(10))

    def test_reliable_factory(self):
        channel = ReliableChannelFactory(DelaySpec.fixed(1.0)).build(
            0, 1, random.Random(0), random.Random(1)
        )
        assert isinstance(channel, ReliableChannel)

    def test_quasi_reliable_drops_after_sender_crash(self):
        # Sender 0 crashes at t=5; a copy sent at t=4.5 with delay 1.0 would
        # arrive at 5.5 >= 5.0, so it is lost with the sender.
        channel = QuasiReliableChannel(
            0, 1, FixedDelay(1.0), sender_crash_time=lambda src: 5.0
        )
        assert channel.transmit("m", 3.0) == 4.0
        assert channel.transmit("m", 4.5) is None

    def test_quasi_reliable_correct_sender_never_drops(self):
        channel = QuasiReliableChannel(
            0, 1, FixedDelay(1.0), sender_crash_time=lambda src: NEVER
        )
        assert all(channel.transmit("m", float(t)) is not None for t in range(5))

    def test_quasi_reliable_factory(self):
        factory = QuasiReliableChannelFactory(sender_crash_time=lambda src: NEVER)
        channel = factory.build(0, 1, random.Random(0), random.Random(1))
        assert isinstance(channel, QuasiReliableChannel)


class TestNetwork:
    def _network(self, n=3, loss=None, loopback=True):
        factory = FairLossyChannelFactory(
            loss_spec=loss or LossSpec.none(), delay_spec=DelaySpec.fixed(1.0)
        )
        return Network(n, factory, RandomSource(0), loopback_delivers=loopback)

    def test_broadcast_reaches_every_process_including_self(self):
        network = self._network(4)
        outcomes = network.broadcast(1, "payload", 0.0)
        assert sorted(o.dst for o in outcomes) == [0, 1, 2, 3]
        assert all(o.delivered for o in outcomes)

    def test_broadcast_without_loopback(self):
        network = self._network(3, loopback=False)
        outcomes = network.broadcast(0, "payload", 0.0)
        assert sorted(o.dst for o in outcomes) == [1, 2]

    def test_envelope_records_src_and_times(self):
        network = self._network(2)
        outcome = network.broadcast(0, "p", 3.0)[1]
        assert outcome.envelope.src == 0
        assert outcome.envelope.send_time == 3.0
        assert outcome.envelope.deliver_time == 4.0
        assert outcome.envelope.in_flight_duration == pytest.approx(1.0)

    def test_unicast(self):
        network = self._network(3)
        outcome = network.unicast(0, 2, "p", 1.0)
        assert outcome.dst == 2
        assert outcome.delivered

    def test_channels_are_cached(self):
        network = self._network(2)
        assert network.channel(0, 1) is network.channel(0, 1)

    def test_channels_are_per_direction(self):
        network = self._network(2)
        assert network.channel(0, 1) is not network.channel(1, 0)

    def test_drop_statistics(self):
        network = self._network(2, loss=LossSpec.bernoulli(1.0))
        # fairness guard eventually forces delivery, so use few attempts
        network.broadcast(0, "p", 0.0)
        assert network.total_attempts() == 2
        assert network.total_drops() == 2
        assert network.observed_drop_rate() == pytest.approx(1.0)

    def test_index_validation(self):
        network = self._network(2)
        with pytest.raises(IndexError):
            network.broadcast(5, "p", 0.0)
        with pytest.raises(IndexError):
            network.channel(0, 9)

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            Network(0, FairLossyChannelFactory())

    def test_describe(self):
        assert "complete-graph" in self._network(3).describe()

    def test_dropped_envelope_flags(self):
        network = self._network(2, loss=LossSpec.bernoulli(1.0))
        outcome = network.broadcast(0, "p", 0.0)[0]
        assert not outcome.delivered
        assert outcome.deliver_time is None
        assert outcome.envelope.dropped
        assert "dropped" in outcome.envelope.describe()
