"""Unit tests for tags, wire payloads, delivery logs and protocol state."""

import random

import pytest

from repro.core.delivery import DeliveryLog
from repro.core.messages import (
    AckPayload,
    LabeledAckPayload,
    MsgPayload,
    TaggedMessage,
    payload_kind,
)
from repro.core.state import Algorithm1State, Algorithm2State, MessageSet
from repro.core.tags import TagGenerator, collision_probability
from repro.failure_detectors.labels import Label


class TestTagGenerator:
    def test_tags_are_unique(self):
        generator = TagGenerator(random.Random(0))
        tags = [generator.next() for _ in range(500)]
        assert len(set(tags)) == 500

    def test_deterministic_given_rng(self):
        a = TagGenerator(random.Random(5))
        b = TagGenerator(random.Random(5))
        assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]

    def test_has_issued(self):
        generator = TagGenerator(random.Random(0))
        tag = generator.next()
        assert generator.has_issued(tag)
        assert not generator.has_issued(tag + 1)

    def test_issued_count(self):
        generator = TagGenerator(random.Random(0))
        for _ in range(7):
            generator.next()
        assert generator.issued_count == 7

    def test_small_space_uniqueness_by_redraw(self):
        generator = TagGenerator(random.Random(0), bits=6)
        tags = [generator.next() for _ in range(40)]
        assert len(set(tags)) == 40

    def test_exhausted_space_raises(self):
        generator = TagGenerator(random.Random(0), bits=2, max_redraws=50)
        for _ in range(4):
            generator.next()
        with pytest.raises(RuntimeError):
            generator.next()

    def test_iterator_protocol(self):
        generator = TagGenerator(random.Random(0))
        iterator = iter(generator)
        assert next(iterator) != next(iterator)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TagGenerator(random.Random(0), bits=0)
        with pytest.raises(ValueError):
            TagGenerator(random.Random(0), max_redraws=0)

    def test_collision_probability_monotone(self):
        assert collision_probability(10) < collision_probability(10_000)

    def test_collision_probability_bounds(self):
        assert collision_probability(0) == 0.0
        assert collision_probability(2 ** 20, bits=8) == 1.0

    def test_collision_probability_validation(self):
        with pytest.raises(ValueError):
            collision_probability(-1)
        with pytest.raises(ValueError):
            collision_probability(5, bits=0)


class TestTaggedMessage:
    def test_equality_and_hash(self):
        assert TaggedMessage("m", 1) == TaggedMessage("m", 1)
        assert TaggedMessage("m", 1) != TaggedMessage("m", 2)
        assert len({TaggedMessage("m", 1), TaggedMessage("m", 1)}) == 1

    def test_rejects_unhashable_content(self):
        with pytest.raises(TypeError):
            TaggedMessage(["list"], 1)

    def test_rejects_non_int_tag(self):
        with pytest.raises(TypeError):
            TaggedMessage("m", "tag")

    def test_describe(self):
        assert "m" in TaggedMessage("m", 0xAB).describe()


class TestPayloads:
    def test_kinds(self):
        message = TaggedMessage("m", 1)
        assert MsgPayload(message).kind == "MSG"
        assert AckPayload(message, 2).kind == "ACK"
        assert LabeledAckPayload(message, 2).kind == "ACK"

    def test_payload_kind_helper(self):
        message = TaggedMessage("m", 1)
        assert payload_kind(MsgPayload(message)) == "MSG"
        assert payload_kind("weird") == "str"

    def test_payloads_hashable_and_equal(self):
        message = TaggedMessage("m", 1)
        assert MsgPayload(message) == MsgPayload(message)
        assert AckPayload(message, 2) == AckPayload(message, 2)
        assert len({MsgPayload(message), MsgPayload(message)}) == 1

    def test_labeled_ack_coerces_labels_to_frozenset(self):
        message = TaggedMessage("m", 1)
        payload = LabeledAckPayload(message, 2, labels={Label(1), Label(2)})
        assert isinstance(payload.labels, frozenset)

    def test_labeled_ack_rejects_non_labels(self):
        message = TaggedMessage("m", 1)
        with pytest.raises(TypeError):
            LabeledAckPayload(message, 2, labels=frozenset({"not a label"}))

    def test_ack_rejects_non_int_tag(self):
        message = TaggedMessage("m", 1)
        with pytest.raises(TypeError):
            AckPayload(message, "x")

    def test_describes(self):
        message = TaggedMessage("m", 1)
        assert "MSG" in MsgPayload(message).describe()
        assert "ACK" in AckPayload(message, 2).describe()
        assert "[" in LabeledAckPayload(message, 2, labels=frozenset({Label(3)})).describe()


class TestDeliveryLog:
    def test_append_and_query(self):
        log = DeliveryLog()
        log.append(TaggedMessage("a", 1))
        log.append(TaggedMessage("b", 2))
        assert len(log) == 2
        assert log.contents() == ["a", "b"]
        assert log.has_content("a")
        assert not log.has_content("c")

    def test_duplicate_delivery_raises(self):
        log = DeliveryLog()
        log.append(TaggedMessage("a", 1))
        with pytest.raises(ValueError):
            log.append(TaggedMessage("a", 1))

    def test_same_content_different_tag_allowed(self):
        log = DeliveryLog()
        log.append(TaggedMessage("a", 1))
        log.append(TaggedMessage("a", 2))
        assert len(log) == 2

    def test_sequence_numbers(self):
        log = DeliveryLog()
        first = log.append(TaggedMessage("a", 1))
        second = log.append(TaggedMessage("b", 2))
        assert (first.sequence, second.sequence) == (0, 1)

    def test_contains_and_position(self):
        log = DeliveryLog()
        message = TaggedMessage("a", 1)
        log.append(message)
        assert message in log
        assert log.position_of("a") == 0
        assert log.position_of("zzz") is None

    def test_content_set(self):
        log = DeliveryLog()
        log.append(TaggedMessage("a", 1))
        log.append(TaggedMessage("b", 2))
        assert log.content_set() == {"a", "b"}

    def test_records_and_messages(self):
        log = DeliveryLog()
        log.append(TaggedMessage("a", 1))
        assert log.records[0].content == "a"
        assert log.messages() == [TaggedMessage("a", 1)]


class TestMessageSet:
    def test_insertion_order_preserved(self):
        ms = MessageSet()
        items = [TaggedMessage(f"m{i}", i) for i in range(5)]
        for item in reversed(items):
            ms.add(item)
        assert ms.as_list() == list(reversed(items))

    def test_add_returns_newness(self):
        ms = MessageSet()
        message = TaggedMessage("m", 1)
        assert ms.add(message) is True
        assert ms.add(message) is False
        assert len(ms) == 1

    def test_discard(self):
        ms = MessageSet([TaggedMessage("m", 1)])
        assert ms.discard(TaggedMessage("m", 1)) is True
        assert ms.discard(TaggedMessage("m", 1)) is False
        assert not ms

    def test_contains_and_iter(self):
        message = TaggedMessage("m", 1)
        ms = MessageSet([message])
        assert message in ms
        assert list(ms) == [message]


class TestAlgorithm1State:
    def test_my_ack_immutable_once_set(self):
        state = Algorithm1State()
        message = TaggedMessage("m", 1)
        state.set_my_ack(message, 42)
        state.set_my_ack(message, 42)  # idempotent re-set is fine
        with pytest.raises(ValueError):
            state.set_my_ack(message, 43)

    def test_record_ack_counts_distinct(self):
        state = Algorithm1State()
        message = TaggedMessage("m", 1)
        assert state.record_ack(message, 1) is True
        assert state.record_ack(message, 1) is False
        assert state.record_ack(message, 2) is True
        assert state.distinct_ack_count(message) == 2

    def test_distinct_ack_count_unknown_message(self):
        assert Algorithm1State().distinct_ack_count(TaggedMessage("x", 9)) == 0

    def test_delivered_tracking(self):
        state = Algorithm1State()
        message = TaggedMessage("m", 1)
        assert not state.is_delivered(message)
        state.mark_delivered(message)
        assert state.is_delivered(message)

    def test_summary_counts(self):
        state = Algorithm1State()
        message = TaggedMessage("m", 1)
        state.add_message(message)
        state.set_my_ack(message, 7)
        state.record_ack(message, 7)
        summary = state.summary()
        assert summary["msg"] == 1
        assert summary["my_ack"] == 1
        assert summary["all_ack"] == 1


class TestAlgorithm2State:
    def test_new_ack_increments_counters(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        labels = frozenset({Label(1), Label(2)})
        assert state.record_labeled_ack(message, 10, labels) is True
        assert state.label_count(message, Label(1)) == 1
        assert state.label_count(message, Label(2)) == 1
        assert state.distinct_ack_count(message) == 1

    def test_repeated_identical_ack_is_noop(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        labels = frozenset({Label(1)})
        state.record_labeled_ack(message, 10, labels)
        assert state.record_labeled_ack(message, 10, labels) is False
        assert state.label_count(message, Label(1)) == 1

    def test_repeated_ack_with_more_labels(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1)}))
        state.record_labeled_ack(message, 10, frozenset({Label(1), Label(2)}))
        assert state.label_count(message, Label(1)) == 1
        assert state.label_count(message, Label(2)) == 1

    def test_repeated_ack_with_fewer_labels(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1), Label(2)}))
        state.record_labeled_ack(message, 10, frozenset({Label(1)}))
        assert state.label_count(message, Label(1)) == 1
        assert state.label_count(message, Label(2)) == 0

    def test_counts_across_distinct_ackers(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1)}))
        state.record_labeled_ack(message, 11, frozenset({Label(1)}))
        state.record_labeled_ack(message, 12, frozenset({Label(1), Label(2)}))
        assert state.label_count(message, Label(1)) == 3
        assert state.label_count(message, Label(2)) == 1

    def test_labels_union(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1)}))
        state.record_labeled_ack(message, 11, frozenset({Label(2)}))
        assert state.labels_union(message) == frozenset({Label(1), Label(2)})
        assert state.labels_union(TaggedMessage("x", 9)) == frozenset()

    def test_ack_tags_for(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset())
        state.record_labeled_ack(message, 11, frozenset())
        assert state.ack_tags_for(message) == frozenset({10, 11})

    def test_counter_invariant_checker(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1), Label(2)}))
        state.record_labeled_ack(message, 11, frozenset({Label(2)}))
        state.record_labeled_ack(message, 10, frozenset({Label(2)}))
        assert state.check_counter_invariant(message)

    def test_counter_for_returns_copy(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1)}))
        counters = state.counter_for(message)
        counters[Label(1)] = 999
        assert state.label_count(message, Label(1)) == 1

    def test_summary_extended(self):
        state = Algorithm2State()
        message = TaggedMessage("m", 1)
        state.record_labeled_ack(message, 10, frozenset({Label(1)}))
        summary = state.summary()
        assert summary["ack_records"] == 1
        assert summary["counted_labels"] == 1
