"""Unit tests for result export (JSON/CSV) and the scenario runner builders."""

import json

import pytest

from repro.core.algorithm1 import MajorityUrbProcess
from repro.core.algorithm2 import QuiescentUrbProcess
from repro.core.baselines import (
    BestEffortBroadcastProcess,
    EagerReliableBroadcastProcess,
    IdentifiedMajorityUrbProcess,
)
from repro.experiments.config import Scenario
from repro.experiments.export import (
    artifact_to_dict,
    experiment_result_to_dict,
    load_experiment_json,
    load_scenario_json,
    provenance_from_dict,
    provenance_to_dict,
    rows_from_csv,
    scenario_result_to_dict,
    write_artifact_csv,
    write_experiment_csvs,
    write_experiment_json,
    write_scenario_json,
)
from repro.experiments.report import ExperimentArtifact, ExperimentResult
from repro.experiments.runner import (
    build_crash_schedule,
    build_detectors,
    build_engine,
    build_network,
    build_process_factory,
    default_scenario,
    run_scenario,
)
from repro.network.loss import LossSpec
from repro.network.reliable import QuasiReliableChannel, ReliableChannel
from repro.simulation.rng import RandomSource
from repro.workloads.generators import SingleBroadcast


@pytest.fixture(scope="module")
def sample_experiment() -> ExperimentResult:
    artifact = ExperimentArtifact(
        name="Table T", kind="table", headers=["x", "y"],
        rows=[[1, 2.5], ["a", True]], notes="n",
    )
    return ExperimentResult(
        experiment_id="E42", title="Sample", artifacts=[artifact, artifact],
        parameters={"seeds": 2},
    )


@pytest.fixture(scope="module")
def sample_scenario_result():
    scenario = Scenario(
        algorithm="algorithm2", n_processes=4, loss=LossSpec.bernoulli(0.2),
        crashes={3: 2.0}, max_time=100.0, stop_when_quiescent=True,
        drain_grace_period=2.0, workload=SingleBroadcast(), seed=5,
    )
    return run_scenario(scenario)


class TestExperimentExport:
    def test_artifact_round_trip_dict(self, sample_experiment):
        data = artifact_to_dict(sample_experiment.artifacts[0])
        assert data["headers"] == ["x", "y"]
        assert data["rows"][0] == [1, 2.5]

    def test_experiment_to_dict(self, sample_experiment):
        data = experiment_result_to_dict(sample_experiment)
        assert data["experiment_id"] == "E42"
        assert len(data["artifacts"]) == 2
        assert data["parameters"]["seeds"] == 2

    def test_write_and_load_json(self, sample_experiment, tmp_path):
        path = write_experiment_json(sample_experiment, tmp_path / "e42.json")
        loaded = load_experiment_json(path)
        assert loaded["title"] == "Sample"
        assert loaded["artifacts"][0]["rows"][1] == ["a", True]

    def test_write_artifact_csv(self, sample_experiment, tmp_path):
        path = write_artifact_csv(sample_experiment.artifacts[0],
                                  tmp_path / "t.csv")
        headers, rows = rows_from_csv(path)
        assert headers == ["x", "y"]
        assert rows[0] == ["1", "2.5"]

    def test_write_experiment_csvs(self, sample_experiment, tmp_path):
        paths = write_experiment_csvs(sample_experiment, tmp_path / "out")
        assert len(paths) == 2
        assert all(p.exists() for p in paths)
        assert {p.name for p in paths} == {"e42_artifact0.csv", "e42_artifact1.csv"}

    def test_rows_from_empty_csv(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("", encoding="utf-8")
        assert rows_from_csv(empty) == ([], [])


class TestScenarioExport:
    def test_scenario_result_to_dict_structure(self, sample_scenario_result):
        data = scenario_result_to_dict(sample_scenario_result)
        assert data["scenario"]["algorithm"] == "algorithm2"
        assert data["verdict"]["uniform_agreement"] is True
        assert data["quiescence"]["quiescent"] is True
        assert data["anonymity_passed"] is True
        assert "m0" in data["deliveries"]["0"]

    def test_scenario_result_json_serialisable(self, sample_scenario_result, tmp_path):
        path = write_scenario_json(sample_scenario_result, tmp_path / "run.json")
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded["metrics"]["deliveries"] >= 3
        assert loaded["stop_reason"] == "quiescent"


class TestScenarioExportRoundTrip:
    """Exported results must reload equal-to-source, including the
    ``ScheduleProvenance`` fields every run carries since the schedule
    exploration work."""

    def test_provenance_round_trips_exactly(self, sample_scenario_result):
        provenance = sample_scenario_result.simulation.schedule
        assert provenance is not None
        rebuilt = provenance_from_dict(provenance_to_dict(provenance))
        assert rebuilt == provenance

    def test_none_provenance_passes_through(self):
        assert provenance_to_dict(None) is None
        assert provenance_from_dict(None) is None

    def test_written_file_reloads_equal_to_source(self, sample_scenario_result,
                                                  tmp_path):
        path = write_scenario_json(sample_scenario_result, tmp_path / "r.json")
        loaded = load_scenario_json(path)
        source = sample_scenario_result
        assert loaded["schedule"] == source.simulation.schedule
        # JSON object keys are strings; normalise the int-keyed counters.
        assert loaded["metrics"] == {
            key: ({str(k): v for k, v in value.items()}
                  if isinstance(value, dict) else value)
            for key, value in source.metrics.as_dict().items()
        }
        assert loaded["final_time"] == source.simulation.final_time
        assert loaded["verdict"]["validity"] == source.verdict.validity.holds
        assert loaded["quiescence"]["last_send_time"] == (
            source.quiescence.last_send_time
        )
        assert loaded["deliveries"] == {
            str(index): log.contents()
            for index, log in source.simulation.delivery_logs.items()
        }

    def test_controlled_run_provenance_round_trips_decisions(self, tmp_path):
        # A strategy-driven run records a non-empty decision trace; the
        # export must preserve it tuple-for-tuple.
        scenario = Scenario(
            algorithm="algorithm1", n_processes=4, seed=3, max_time=60.0,
            stop_when_all_correct_delivered=True, drain_grace_period=2.0,
            explore_strategy="random_walk", explore_index=2,
        )
        result = run_scenario(scenario)
        provenance = result.simulation.schedule
        assert provenance is not None
        assert provenance.decisions  # controlled runs record decisions
        path = write_scenario_json(result, tmp_path / "controlled.json")
        loaded = load_scenario_json(path)
        assert loaded["schedule"] == provenance
        assert loaded["schedule"].decisions == provenance.decisions
        assert loaded["schedule"].schedule_hash == provenance.schedule_hash


class TestRunnerBuilders:
    def test_build_crash_schedule(self):
        scenario = Scenario(n_processes=4, crashes={2: 5.0})
        schedule = build_crash_schedule(scenario)
        assert schedule.crash_time(2) == 5.0
        assert schedule.n_processes == 4

    def test_build_network_fair_lossy_default(self):
        scenario = Scenario(n_processes=3)
        network = build_network(scenario, RandomSource(0),
                                build_crash_schedule(scenario))
        channel = network.channel(0, 1)
        assert channel.fairness_bound is not None

    def test_build_network_reliable(self):
        scenario = Scenario(n_processes=3, channel_type="reliable")
        network = build_network(scenario, RandomSource(0),
                                build_crash_schedule(scenario))
        assert isinstance(network.channel(0, 1), ReliableChannel)

    def test_build_network_quasi_reliable(self):
        scenario = Scenario(n_processes=3, channel_type="quasi_reliable",
                            crashes={2: 1.0})
        network = build_network(scenario, RandomSource(0),
                                build_crash_schedule(scenario))
        assert isinstance(network.channel(0, 1), QuasiReliableChannel)

    def test_detectors_only_built_for_algorithm2(self):
        schedule = build_crash_schedule(Scenario(n_processes=3))
        atheta, apstar = build_detectors(Scenario(algorithm="algorithm1"),
                                         schedule, RandomSource(0))
        assert atheta is None and apstar is None
        atheta, apstar = build_detectors(Scenario(algorithm="algorithm2",
                                                  n_processes=3),
                                         schedule, RandomSource(0))
        assert atheta is not None and apstar is not None

    @pytest.mark.parametrize("algorithm,expected", [
        ("algorithm1", MajorityUrbProcess),
        ("algorithm2", QuiescentUrbProcess),
        ("best_effort", BestEffortBroadcastProcess),
        ("eager_rb", EagerReliableBroadcastProcess),
        ("identified_urb", IdentifiedMajorityUrbProcess),
    ])
    def test_process_factory_types(self, algorithm, expected):
        scenario = Scenario(algorithm=algorithm, n_processes=4)
        engine = build_engine(scenario)
        assert all(isinstance(p, expected) for p in engine.processes.values())

    def test_identified_processes_get_distinct_identities(self):
        scenario = Scenario(algorithm="identified_urb", n_processes=4)
        factory = build_process_factory(scenario)
        engine = build_engine(scenario)
        identities = {p.identity for p in engine.processes.values()}
        assert identities == {0, 1, 2, 3}
        assert factory is not None

    def test_engine_respects_scenario_dimensions(self):
        scenario = Scenario(algorithm="algorithm2", n_processes=6, seed=9,
                            tick_interval=0.5, max_time=77.0)
        engine = build_engine(scenario)
        assert engine.config.n_processes == 6
        assert engine.config.seed == 9
        assert engine.config.tick_interval == 0.5
        assert engine.config.max_time == 77.0
        assert engine.network.n_processes == 6

    def test_default_scenario_helper(self):
        scenario = default_scenario("algorithm1", n_processes=9)
        assert scenario.algorithm == "algorithm1"
        assert scenario.n_processes == 9
        assert scenario.stop_when_all_correct_delivered
        quiescent = default_scenario("algorithm2")
        assert quiescent.stop_when_quiescent

    def test_default_workload_injected_when_missing(self):
        scenario = Scenario(algorithm="algorithm1", n_processes=3,
                            workload=None, max_time=30.0,
                            stop_when_all_correct_delivered=True)
        result = run_scenario(scenario)
        assert result.simulation.expected_contents == ("m0",)
