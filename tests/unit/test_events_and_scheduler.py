"""Unit tests for the event taxonomy and the event queue."""

import pytest

from repro.simulation.events import BroadcastCommand, Event, EventKind, EventStats
from repro.simulation.scheduler import EventQueue, SchedulingError


class TestEvent:
    def test_ordering_by_time(self):
        early = Event(time=1.0, seq=5, kind=EventKind.TICK, target=0)
        late = Event(time=2.0, seq=0, kind=EventKind.TICK, target=0)
        assert early < late

    def test_ordering_tie_broken_by_seq(self):
        first = Event(time=1.0, seq=0, kind=EventKind.TICK, target=0)
        second = Event(time=1.0, seq=1, kind=EventKind.TICK, target=0)
        assert first < second

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Event(time=-1.0, seq=0, kind=EventKind.TICK)

    def test_rejects_negative_seq(self):
        with pytest.raises(ValueError):
            Event(time=0.0, seq=-1, kind=EventKind.TICK)

    def test_rejects_negative_target(self):
        with pytest.raises(ValueError):
            Event(time=0.0, seq=0, kind=EventKind.TICK, target=-2)

    def test_describe_mentions_kind_and_target(self):
        event = Event(time=1.0, seq=0, kind=EventKind.RECEIVE, target=3)
        assert "receive" in event.describe()
        assert "p[3]" in event.describe()

    def test_describe_engine_event(self):
        event = Event(time=1.0, seq=0, kind=EventKind.ENGINE_CHECK)
        assert "engine" in event.describe()


class TestBroadcastCommand:
    def test_valid_command(self):
        command = BroadcastCommand(time=1.0, sender=2, content="m")
        assert command.content == "m"

    def test_rejects_negative_sender(self):
        with pytest.raises(ValueError):
            BroadcastCommand(time=0.0, sender=-1, content="m")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            BroadcastCommand(time=-1.0, sender=0, content="m")

    def test_rejects_unhashable_content(self):
        with pytest.raises(TypeError):
            BroadcastCommand(time=0.0, sender=0, content=["not", "hashable"])


class TestEventStats:
    def test_counts_accumulate(self):
        stats = EventStats()
        stats.count(EventKind.TICK)
        stats.count(EventKind.TICK)
        stats.count(EventKind.RECEIVE)
        assert stats.dispatched[EventKind.TICK] == 2
        assert stats.total == 3

    def test_as_dict_uses_string_keys(self):
        stats = EventStats()
        stats.count(EventKind.CRASH)
        assert stats.as_dict()["crash"] == 1


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.schedule(3.0, EventKind.TICK, target=0)
        queue.schedule(1.0, EventKind.TICK, target=1)
        queue.schedule(2.0, EventKind.TICK, target=2)
        targets = [queue.pop().target for _ in range(3)]
        assert targets == [1, 2, 0]

    def test_fifo_for_equal_times(self):
        queue = EventQueue()
        for target in range(5):
            queue.schedule(1.0, EventKind.TICK, target=target)
        assert [queue.pop().target for _ in range(5)] == list(range(5))

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.schedule(1.0, EventKind.TICK)
        assert queue
        assert len(queue) == 1

    def test_peek_does_not_remove(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK, target=7)
        assert queue.peek().target == 7
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(4.5, EventKind.TICK)
        assert queue.peek_time() == 4.5

    def test_cannot_schedule_into_past(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.TICK)
        queue.pop()
        with pytest.raises(SchedulingError):
            queue.schedule(4.0, EventKind.TICK)

    def test_can_schedule_at_current_time(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.TICK)
        queue.pop()
        event = queue.schedule(5.0, EventKind.TICK)
        assert event.time == 5.0

    def test_current_time_tracks_pops(self):
        queue = EventQueue()
        queue.schedule(2.0, EventKind.TICK)
        assert queue.current_time == 0.0
        queue.pop()
        assert queue.current_time == 2.0

    def test_counters(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK)
        queue.schedule(2.0, EventKind.TICK)
        queue.pop()
        assert queue.pushed_count == 2
        assert queue.popped_count == 1

    def test_pending_by_kind(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK)
        queue.schedule(1.0, EventKind.RECEIVE, target=0, payload="x")
        pending = queue.pending_by_kind()
        assert pending[EventKind.TICK] == 1
        assert pending[EventKind.RECEIVE] == 1
        assert pending[EventKind.CRASH] == 0

    def test_drop_pending_removes_only_kind(self):
        queue = EventQueue()
        queue.schedule(1.0, EventKind.TICK)
        queue.schedule(1.0, EventKind.TICK)
        queue.schedule(1.0, EventKind.RECEIVE, target=0)
        removed = queue.drop_pending(EventKind.TICK)
        assert removed == 2
        assert len(queue) == 1
        assert queue.peek().kind is EventKind.RECEIVE

    def test_iteration_is_sorted_and_non_destructive(self):
        queue = EventQueue()
        queue.schedule(2.0, EventKind.TICK)
        queue.schedule(1.0, EventKind.TICK)
        times = [event.time for event in queue]
        assert times == [1.0, 2.0]
        assert len(queue) == 2

    def test_push_event_rejects_past(self):
        queue = EventQueue()
        queue.schedule(5.0, EventKind.TICK)
        queue.pop()
        with pytest.raises(SchedulingError):
            queue.push_event(Event(time=1.0, seq=99, kind=EventKind.TICK))
