"""Unit tests for the channel loss models."""

import random

import pytest

from repro.network.loss import (
    AdversarialFiniteLoss,
    BernoulliLoss,
    DropFirstK,
    GilbertElliottLoss,
    LossSpec,
    NoLoss,
    PartitionLoss,
)


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop(0, 1, "k") for _ in range(100))

    def test_describe(self):
        assert NoLoss().describe() == "no-loss"


class TestBernoulliLoss:
    def test_p_zero_never_drops(self):
        model = BernoulliLoss(0.0, random.Random(0))
        assert not any(model.should_drop(0, 1, "k") for _ in range(50))

    def test_p_one_always_drops(self):
        model = BernoulliLoss(1.0, random.Random(0))
        assert all(model.should_drop(0, 1, "k") for _ in range(50))

    def test_empirical_rate_close_to_p(self):
        model = BernoulliLoss(0.3, random.Random(7))
        drops = sum(model.should_drop(0, 1, i) for i in range(5000))
        assert 0.25 < drops / 5000 < 0.35

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, random.Random(0))
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1, random.Random(0))

    def test_describe_contains_p(self):
        assert "0.3" in BernoulliLoss(0.3, random.Random(0)).describe()

    def test_deterministic_given_rng(self):
        a = BernoulliLoss(0.5, random.Random(3))
        b = BernoulliLoss(0.5, random.Random(3))
        assert [a.should_drop(0, 1, i) for i in range(20)] == [
            b.should_drop(0, 1, i) for i in range(20)
        ]


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(random.Random(0), loss_bad=1.2)

    def test_loses_more_than_good_state_alone(self):
        # With a sticky bad state the average loss rate must exceed loss_good.
        model = GilbertElliottLoss(
            random.Random(1), p_good_to_bad=0.2, p_bad_to_good=0.2,
            loss_good=0.0, loss_bad=1.0,
        )
        drops = sum(model.should_drop(0, 1, i) for i in range(4000))
        assert drops / 4000 > 0.2

    def test_state_transitions_happen(self):
        model = GilbertElliottLoss(
            random.Random(2), p_good_to_bad=0.5, p_bad_to_good=0.5
        )
        states = set()
        for i in range(200):
            model.should_drop(0, 1, i)
            states.add(model.in_bad_state)
        assert states == {True, False}

    def test_describe(self):
        text = GilbertElliottLoss(random.Random(0)).describe()
        assert "gilbert-elliott" in text


class TestDropFirstK:
    def test_drops_exactly_first_k(self):
        model = DropFirstK(3)
        results = [model.should_drop(0, 1, "m") for _ in range(6)]
        assert results == [True, True, True, False, False, False]

    def test_independent_per_key(self):
        model = DropFirstK(1)
        assert model.should_drop(0, 1, "a") is True
        assert model.should_drop(0, 1, "b") is True
        assert model.should_drop(0, 1, "a") is False

    def test_zero_k_never_drops(self):
        model = DropFirstK(0)
        assert model.should_drop(0, 1, "m") is False

    def test_attempts_for(self):
        model = DropFirstK(2)
        model.should_drop(0, 1, "m")
        model.should_drop(0, 1, "m")
        assert model.attempts_for("m") == 2
        assert model.attempts_for("other") == 0

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError):
            DropFirstK(-1)


class TestAdversarialFiniteLoss:
    def test_budget_is_exhausted(self):
        model = AdversarialFiniteLoss(4)
        results = [model.should_drop(0, 1, i) for i in range(8)]
        assert results == [True] * 4 + [False] * 4

    def test_remaining_budget(self):
        model = AdversarialFiniteLoss(2)
        model.should_drop(0, 1, 0)
        assert model.remaining_budget == 1

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            AdversarialFiniteLoss(-5)


class TestPartitionLoss:
    def test_drops_crossing_traffic_both_ways(self):
        model = PartitionLoss({0, 1}, {2, 3})
        assert model.should_drop(0, 2, "m")
        assert model.should_drop(3, 1, "m")

    def test_keeps_intra_group_traffic(self):
        model = PartitionLoss({0, 1}, {2, 3})
        assert not model.should_drop(0, 1, "m")
        assert not model.should_drop(2, 3, "m")

    def test_one_way_partition(self):
        model = PartitionLoss({0}, {1}, drop_b_to_a=False)
        assert model.should_drop(0, 1, "m")
        assert not model.should_drop(1, 0, "m")

    def test_rejects_overlapping_groups(self):
        with pytest.raises(ValueError):
            PartitionLoss({0, 1}, {1, 2})

    def test_inner_model_applies_inside_groups(self):
        model = PartitionLoss({0, 1}, {2}, inner_model=DropFirstK(1))
        assert model.should_drop(0, 1, "m") is True
        assert model.should_drop(0, 1, "m") is False


class TestLossSpec:
    def test_none_spec(self):
        assert isinstance(LossSpec.none().build(0, 1, random.Random(0)), NoLoss)

    def test_bernoulli_spec(self):
        model = LossSpec.bernoulli(0.4).build(0, 1, random.Random(0))
        assert isinstance(model, BernoulliLoss)
        assert model.probability == 0.4

    def test_gilbert_spec(self):
        model = LossSpec.gilbert_elliott(loss_bad=0.9).build(0, 1, random.Random(0))
        assert isinstance(model, GilbertElliottLoss)
        assert model.loss_bad == 0.9

    def test_drop_first_k_spec(self):
        model = LossSpec.drop_first_k(2).build(0, 1, random.Random(0))
        assert isinstance(model, DropFirstK)

    def test_adversarial_spec(self):
        model = LossSpec.adversarial_finite(3).build(0, 1, random.Random(0))
        assert isinstance(model, AdversarialFiniteLoss)

    def test_partition_spec(self):
        model = LossSpec.partition({0}, {1}).build(0, 1, random.Random(0))
        assert isinstance(model, PartitionLoss)

    def test_custom_spec(self):
        spec = LossSpec.custom(lambda src, dst, rng: DropFirstK(src + dst))
        model = spec.build(2, 3, random.Random(0))
        assert isinstance(model, DropFirstK)
        assert model.k == 5

    def test_custom_without_factory_rejected(self):
        with pytest.raises(ValueError):
            LossSpec(kind="custom")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            LossSpec(kind="quantum")

    def test_per_channel_instances_are_independent(self):
        spec = LossSpec.drop_first_k(1)
        a = spec.build(0, 1, random.Random(0))
        b = spec.build(0, 2, random.Random(0))
        a.should_drop(0, 1, "m")
        assert b.attempts_for("m") == 0

    def test_describe(self):
        assert "bernoulli" in LossSpec.bernoulli(0.2).describe()
        assert LossSpec.none().describe() == "no-loss"
