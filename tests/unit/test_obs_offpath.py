"""Observability must stay off the simulation path.

The invariant the whole obs layer is built around: enabling metrics (or
the timeline) changes **nothing** observable about a run — traces,
metrics summaries, delivery logs and channel statistics stay
bit-identical, under every engine backend.  These tests pin that on a
subset of the PR 7 parity battery, and cover the instrumentation
call sites themselves (batch runner, result store, engine counters)."""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.campaigns.hashing import scenario_cell_key
from repro.campaigns.store import ResultStore
from repro.experiments.batch import BatchRunner
from repro.experiments.config import Scenario
from repro.experiments.parity import parity_cases, run_fingerprint
from repro.experiments.runner import run_scenario
from repro.registry import engine_names


@pytest.fixture(autouse=True)
def clean_registry():
    obs.reset()
    yield
    obs.reset()
    obs.set_timeline(None)


#: A fast cross-section of the battery: the headline vector path, the
#: fairness-guard path, and the per-event fallback exercised by crashes.
_BATTERY_SUBSET = ("bernoulli-uniform", "heavy-loss-guard", "crashes-mid-run")


def _battery_subset():
    by_name = {scenario.name: scenario for scenario in parity_cases()}
    return [by_name[name] for name in _BATTERY_SUBSET]


class TestObsOffPath:
    @pytest.mark.parametrize("engine", sorted(engine_names()))
    @pytest.mark.parametrize("name", _BATTERY_SUBSET)
    def test_fingerprints_identical_obs_on_vs_off(self, engine, name):
        scenario = {s.name: s for s in parity_cases()}[name]
        obs.disable()
        baseline = run_fingerprint(scenario, engine).fingerprint
        obs.enable()
        stream = io.StringIO()
        obs.set_timeline(obs.Timeline(stream))
        try:
            instrumented = run_fingerprint(scenario, engine).fingerprint
        finally:
            obs.set_timeline(None)
        assert instrumented == baseline

    def test_enabled_run_actually_records(self):
        obs.enable()
        scenario = _battery_subset()[0]
        run_fingerprint(scenario, "reference")
        runs = obs.REGISTRY.get("repro_sim_runs_total")
        events = obs.REGISTRY.get("repro_sim_events_total")
        assert runs.value(engine="reference", dispatch_mode="per-event") == 1
        assert events.value(engine="reference") > 0


class TestEngineCounters:
    def test_vectorized_batched_run_records_chunks(self):
        obs.enable()
        scenario = _battery_subset()[0]
        run_fingerprint(scenario, "vectorized")
        runs = obs.REGISTRY.get("repro_sim_runs_total")
        (labels, value), *rest = [
            (labels, value) for labels, value in runs.samples() if value]
        assert not rest
        assert dict(zip(runs.labelnames, labels))["engine"] == "vectorized"
        chunks = obs.REGISTRY.get("repro_engine_chunk_cells")
        ((_, (_, _, count)),) = chunks.samples()
        assert count > 0

    def test_full_trace_fallback_reason_recorded(self):
        obs.enable()
        scenario = _battery_subset()[0].with_(trace_enabled=True)
        from repro.experiments.runner import build_engine
        from repro.simulation.tracing import TraceLevel, TraceRecorder

        engine = build_engine(scenario.with_(engine="vectorized"))
        engine.trace = TraceRecorder(enabled=True, level=TraceLevel.FULL)
        engine.run()
        fallbacks = obs.REGISTRY.get("repro_engine_fallback_total")
        assert fallbacks.value(reason="full_trace") == 1


class TestBatchRunnerInstrumentation:
    def _scenario(self):
        return Scenario(name="batch-obs", algorithm="algorithm2",
                        n_processes=4, seed=7, max_time=30.0,
                        stop_when_quiescent=True)

    def test_inline_run_counts_cells_and_settles_in_flight(self):
        obs.enable()
        BatchRunner(parallel=1).run([self._scenario()] * 3)
        cells = obs.REGISTRY.get("repro_batch_cells_total")
        assert cells.value(status="ok") == 3
        assert cells.value(status="failed") == 0
        assert obs.REGISTRY.get("repro_batch_in_flight").value() == 0
        seconds = obs.REGISTRY.get("repro_batch_cell_seconds")
        ((_, (_, total, count)),) = seconds.samples()
        assert count == 3 and total > 0

    def test_failures_counted_and_in_flight_settles(self):
        obs.enable()
        bad = self._scenario().with_(name="bad",
                                     metadata={"burst_size": -1},
                                     workload="burst")
        outcome = BatchRunner(parallel=1, fail_fast=False).run(
            [self._scenario(), bad])
        cells = obs.REGISTRY.get("repro_batch_cells_total")
        assert cells.value(status="failed") == len(outcome.failures)
        assert cells.value(status="ok") == 2 - len(outcome.failures)
        assert obs.REGISTRY.get("repro_batch_in_flight").value() == 0


class TestStoreCounters:
    def _result(self, seed=0):
        return run_scenario(Scenario(
            name="store-obs", algorithm="algorithm2", n_processes=4,
            seed=seed, max_time=30.0, stop_when_quiescent=True))

    def test_lookup_and_put_metrics(self, tmp_path):
        obs.enable()
        with ResultStore(tmp_path / "store") as store:
            result = self._result()
            key = scenario_cell_key(result.scenario)
            assert not store.contains(key)
            store.put(result)
            assert store.contains(key)
        lookups = obs.REGISTRY.get("repro_store_lookups_total")
        label = (tmp_path / "store").name
        assert lookups.value(store=label, result="miss") == 1
        assert lookups.value(store=label, result="hit") == 1
        assert obs.REGISTRY.get(
            "repro_store_puts_total").value(store=label) == 1
        assert obs.REGISTRY.get(
            "repro_store_blob_bytes_total").value(store=label) > 0

    def test_lifetime_counters_survive_reopen(self, tmp_path):
        root = tmp_path / "store"
        with ResultStore(root) as store:
            result = self._result()
            key = scenario_cell_key(result.scenario)
            store.contains(key)             # miss
            store.put(result)
            store.contains(key)             # hit
            assert (store.hits, store.misses, store.puts) == (1, 1, 1)
        with ResultStore(root) as store:
            # Per-handle counters reset; lifetime counters persisted.
            assert (store.hits, store.misses, store.puts) == (0, 0, 0)
            assert store.lifetime_hits == 1
            assert store.lifetime_misses == 1
            assert store.lifetime_puts == 1
            store.contains(scenario_cell_key(
                self._result(seed=99).scenario))    # one more miss
        with ResultStore(root) as store:
            assert store.lifetime_misses == 2

    def test_lifetime_counters_sum_across_handles(self, tmp_path):
        root = tmp_path / "store"
        result = self._result()
        with ResultStore(root) as store:
            store.put(result)
        key = scenario_cell_key(result.scenario)
        first = ResultStore(root)
        second = ResultStore(root)
        try:
            first.contains(key)
            second.contains(key)
        finally:
            first.close()
            second.close()
        with ResultStore(root) as store:
            assert store.lifetime_hits == 2
            assert store.lifetime_puts == 1


class TestTimelineFromRuns:
    def test_store_traffic_lands_on_the_timeline(self, tmp_path):
        obs.enable()
        stream = io.StringIO()
        obs.set_timeline(obs.Timeline(stream))
        try:
            with ResultStore(tmp_path / "store") as store:
                result = run_scenario(Scenario(
                    name="tl", algorithm="algorithm2", n_processes=4,
                    seed=3, max_time=30.0, stop_when_quiescent=True))
                store.contains(scenario_cell_key(result.scenario))
                store.put(result)
        finally:
            obs.set_timeline(None)
        kinds = [json.loads(line)["kind"]
                 for line in stream.getvalue().splitlines()]
        assert "store.miss" in kinds
        assert "store.put" in kinds
