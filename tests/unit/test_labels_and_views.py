"""Unit tests for labels, FD pairs and failure-detector views."""

import random

import pytest

from repro.failure_detectors.base import (
    FailureDetectorView,
    FDPair,
    StaticFailureDetector,
)
from repro.failure_detectors.labels import Label, LabelAssigner


class TestLabel:
    def test_equality_by_value(self):
        assert Label(7) == Label(7)
        assert Label(7) != Label(8)

    def test_hashable(self):
        assert len({Label(1), Label(1), Label(2)}) == 2

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            Label("abc")
        with pytest.raises(TypeError):
            Label(True)

    def test_short_form(self):
        assert Label(0xABCD).short() == "abcd"

    def test_repr_is_opaque_hex(self):
        assert "Label(0x" in repr(Label(5))


class TestLabelAssigner:
    def test_assigns_distinct_labels(self):
        assigner = LabelAssigner(10, random.Random(0))
        labels = [assigner.label_of(i) for i in range(10)]
        assert len(set(labels)) == 10

    def test_deterministic_given_rng(self):
        a = LabelAssigner(5, random.Random(3))
        b = LabelAssigner(5, random.Random(3))
        assert a.as_mapping() == b.as_mapping()

    def test_index_of_inverse(self):
        assigner = LabelAssigner(5, random.Random(0))
        for i in range(5):
            assert assigner.index_of(assigner.label_of(i)) == i

    def test_index_of_unknown_label(self):
        assigner = LabelAssigner(3, random.Random(0))
        with pytest.raises(KeyError):
            assigner.index_of(Label(123456789))

    def test_label_of_out_of_range(self):
        assigner = LabelAssigner(3, random.Random(0))
        with pytest.raises(IndexError):
            assigner.label_of(3)

    def test_labels_of_subset(self):
        assigner = LabelAssigner(5, random.Random(0))
        subset = assigner.labels_of([0, 2])
        assert subset == frozenset({assigner.label_of(0), assigner.label_of(2)})

    def test_all_labels(self):
        assigner = LabelAssigner(4, random.Random(0))
        assert len(assigner.all_labels()) == 4

    def test_small_tag_space_still_unique(self):
        # With only 8 bits, collisions are likely during drawing; uniqueness
        # must still be enforced by redrawing.
        assigner = LabelAssigner(20, random.Random(0), bits=8)
        assert len(assigner.all_labels()) == 20

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LabelAssigner(0, random.Random(0))
        with pytest.raises(ValueError):
            LabelAssigner(3, random.Random(0), bits=4)


class TestFDPair:
    def test_rejects_negative_number(self):
        with pytest.raises(ValueError):
            FDPair(Label(1), -1)

    def test_fields(self):
        pair = FDPair(Label(1), 3)
        assert pair.label == Label(1)
        assert pair.number == 3


class TestFailureDetectorView:
    def test_empty_view(self):
        view = FailureDetectorView.empty()
        assert view.is_empty()
        assert len(view) == 0
        assert not view

    def test_labels_and_number_for(self):
        view = FailureDetectorView([FDPair(Label(1), 3), FDPair(Label(2), 3)])
        assert view.labels() == frozenset({Label(1), Label(2)})
        assert view.number_for(Label(1)) == 3
        assert view.number_for(Label(9)) is None

    def test_contains(self):
        view = FailureDetectorView([FDPair(Label(1), 3)])
        assert Label(1) in view
        assert Label(2) not in view

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            FailureDetectorView([FDPair(Label(1), 2), FDPair(Label(1), 3)])

    def test_equality_ignores_order(self):
        a = FailureDetectorView([FDPair(Label(1), 2), FDPair(Label(2), 2)])
        b = FailureDetectorView([FDPair(Label(2), 2), FDPair(Label(1), 2)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = FailureDetectorView([FDPair(Label(1), 2)])
        b = FailureDetectorView([FDPair(Label(1), 3)])
        assert a != b

    def test_from_mapping(self):
        view = FailureDetectorView.from_mapping({Label(1): 4})
        assert view.number_for(Label(1)) == 4

    def test_iteration_yields_pairs(self):
        pairs = [FDPair(Label(1), 2), FDPair(Label(2), 2)]
        view = FailureDetectorView(pairs)
        assert list(view) == pairs
        assert view.pairs == tuple(pairs)

    def test_repr_contains_numbers(self):
        assert "2" in repr(FailureDetectorView([FDPair(Label(1), 2)]))


class TestStaticFailureDetector:
    def test_returns_configured_view(self):
        view = FailureDetectorView([FDPair(Label(1), 1)])
        detector = StaticFailureDetector({0: view})
        assert detector.view(0, 10.0) == view

    def test_default_is_empty(self):
        detector = StaticFailureDetector({})
        assert detector.view(3, 0.0).is_empty()

    def test_custom_default(self):
        default = FailureDetectorView([FDPair(Label(5), 2)])
        detector = StaticFailureDetector({}, default=default)
        assert detector.view(0, 0.0) == default

    def test_describe(self):
        assert StaticFailureDetector({}).describe() == "static"
