"""Unit tests for trace recording and metric collection."""

import pytest

from repro.simulation.metrics import MetricsCollector
from repro.simulation.tracing import TraceCategory, TraceRecorder


class TestTraceRecorder:
    def test_record_and_len(self):
        trace = TraceRecorder()
        trace.record(1.0, TraceCategory.SEND, 0, dst=1)
        trace.record(2.0, TraceCategory.DROP, 0, dst=2)
        assert len(trace) == 2

    def test_disabled_recorder_is_noop(self):
        trace = TraceRecorder(enabled=False)
        assert trace.record(1.0, TraceCategory.SEND, 0) is None
        assert len(trace) == 0

    def test_filter_by_category(self):
        trace = TraceRecorder()
        trace.record(1.0, TraceCategory.SEND, 0)
        trace.record(1.5, TraceCategory.URB_DELIVER, 1, content="m")
        assert len(trace.filter(category=TraceCategory.SEND)) == 1

    def test_filter_by_process(self):
        trace = TraceRecorder()
        trace.record(1.0, TraceCategory.SEND, 0)
        trace.record(1.0, TraceCategory.SEND, 1)
        assert len(trace.filter(process=1)) == 1

    def test_filter_with_predicate(self):
        trace = TraceRecorder()
        trace.record(1.0, TraceCategory.SEND, 0, kind="MSG")
        trace.record(1.0, TraceCategory.SEND, 0, kind="ACK")
        only_acks = trace.filter(predicate=lambda e: e.detail("kind") == "ACK")
        assert len(only_acks) == 1

    def test_count(self):
        trace = TraceRecorder()
        for _ in range(3):
            trace.record(1.0, TraceCategory.CRASH, 0)
        assert trace.count(TraceCategory.CRASH) == 3
        assert trace.count(TraceCategory.SEND) == 0

    def test_first_and_last_time(self):
        trace = TraceRecorder()
        trace.record(1.0, TraceCategory.SEND, 0)
        trace.record(5.0, TraceCategory.SEND, 0)
        assert trace.first_time(TraceCategory.SEND) == 1.0
        assert trace.last_time(TraceCategory.SEND) == 5.0
        assert trace.last_time(TraceCategory.CRASH) is None

    def test_timeline_buckets(self):
        trace = TraceRecorder()
        for t in (0.5, 1.5, 1.6, 4.2):
            trace.record(t, TraceCategory.SEND, 0)
        timeline = trace.timeline(TraceCategory.SEND, bucket=1.0)
        counts = dict(timeline)
        assert counts[0.0] == 1
        assert counts[1.0] == 2
        assert counts[4.0] == 1

    def test_timeline_empty(self):
        assert TraceRecorder().timeline(TraceCategory.SEND, 1.0) == []

    def test_timeline_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            TraceRecorder().timeline(TraceCategory.SEND, 0.0)

    def test_to_dicts_round_trip(self):
        trace = TraceRecorder()
        trace.record(1.0, TraceCategory.URB_DELIVER, 2, content="m0", tag=7)
        row = trace.to_dicts()[0]
        assert row["category"] == "urb_deliver"
        assert row["process"] == 2
        assert row["content"] == "m0"

    def test_detail_default(self):
        trace = TraceRecorder()
        event = trace.record(1.0, TraceCategory.SEND, 0)
        assert event.detail("missing", 42) == 42

    def test_extend(self):
        source = TraceRecorder()
        source.record(1.0, TraceCategory.SEND, 0)
        target = TraceRecorder()
        target.extend(source.events)
        assert len(target) == 1


class TestMetricsCollector:
    def test_send_counters(self):
        metrics = MetricsCollector()
        metrics.on_send(1.0, 0, "MSG")
        metrics.on_send(2.0, 1, "ACK")
        assert metrics.total_sends == 2
        assert metrics.sends_by_kind == {"MSG": 1, "ACK": 1}
        assert metrics.sends_by_process == {0: 1, 1: 1}
        assert metrics.last_send_time == 2.0

    def test_drop_counters(self):
        metrics = MetricsCollector()
        metrics.on_drop(1.0, 0, "MSG")
        assert metrics.total_drops == 1
        assert metrics.drops_by_kind["MSG"] == 1

    def test_latency_samples(self):
        metrics = MetricsCollector()
        metrics.on_urb_broadcast(1.0, 0, "m0")
        metrics.on_urb_deliver(3.5, 2, "m0")
        assert metrics.deliveries == 1
        assert metrics.latency_samples[0].latency == pytest.approx(2.5)

    def test_rebroadcast_keeps_first_time(self):
        metrics = MetricsCollector()
        metrics.on_urb_broadcast(1.0, 0, "m0")
        metrics.on_urb_broadcast(5.0, 1, "m0")
        metrics.on_urb_deliver(6.0, 2, "m0")
        assert metrics.latency_samples[0].latency == pytest.approx(5.0)

    def test_delivery_without_broadcast_uses_zero(self):
        metrics = MetricsCollector()
        metrics.on_urb_deliver(4.0, 0, "ghost")
        assert metrics.latency_samples[0].latency == pytest.approx(4.0)

    def test_cumulative_sends_at(self):
        metrics = MetricsCollector()
        for t in (1.0, 2.0, 3.0):
            metrics.on_send(t, 0, "MSG")
        assert metrics.cumulative_sends_at(0.5) == 0
        assert metrics.cumulative_sends_at(2.0) == 2
        assert metrics.cumulative_sends_at(10.0) == 3

    def test_sends_in_window(self):
        metrics = MetricsCollector()
        for t in (1.0, 2.0, 3.0):
            metrics.on_send(t, 0, "MSG")
        assert metrics.sends_in_window(1.5, 3.0) == 1

    def test_summary_empty(self):
        summary = MetricsCollector().summary()
        assert summary.total_sends == 0
        assert summary.mean_latency is None
        assert summary.p95_latency is None

    def test_summary_populated(self):
        metrics = MetricsCollector()
        metrics.on_urb_broadcast(0.0, 0, "m")
        metrics.on_send(0.5, 0, "MSG")
        metrics.on_channel_deliver(1.0, 1, "MSG")
        metrics.on_urb_deliver(1.0, 1, "m")
        metrics.on_finish(10.0)
        summary = metrics.summary()
        assert summary.total_sends == 1
        assert summary.total_channel_deliveries == 1
        assert summary.deliveries == 1
        assert summary.mean_latency == pytest.approx(1.0)
        assert summary.final_time == 10.0

    def test_summary_as_dict(self):
        data = MetricsCollector().summary().as_dict()
        assert "total_sends" in data
        assert "mean_latency" in data

    def test_latencies_array(self):
        metrics = MetricsCollector()
        metrics.on_urb_broadcast(0.0, 0, "m")
        metrics.on_urb_deliver(2.0, 1, "m")
        metrics.on_urb_deliver(4.0, 2, "m")
        assert list(metrics.latencies()) == [2.0, 4.0]
